#include "net/router.h"

#include <cstdlib>
#include <utility>

#include "net/codec.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace lcrec::net {

namespace {

struct RouterMetrics {
  obs::Counter& requests;
  obs::Counter& failovers;
  obs::Counter& failures;  // requests no shard could serve

  static RouterMetrics& Get() {
    static RouterMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new RouterMetrics{
          r.GetCounter("lcrec.net.router.requests"),
          r.GetCounter("lcrec.net.router.failovers"),
          r.GetCounter("lcrec.net.router.failures"),
      };
    }();
    return *m;
  }
};

}  // namespace

bool ParseEndpoint(const std::string& text, std::string* host, int* port) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return false;
  }
  const std::string port_text = text.substr(colon + 1);
  for (char c : port_text) {
    if (c < '0' || c > '9') return false;
  }
  const long p = std::atol(port_text.c_str());
  if (p <= 0 || p > 65535) return false;
  *host = text.substr(0, colon);
  *port = static_cast<int>(p);
  return true;
}

Router::Router(RouterOptions options) : options_(std::move(options)),
                                        server_(options_.server) {}

Router::~Router() { Stop(); }

uint64_t Router::UserHash(const serve::RecommendRequest& request) {
  // FNV-1a over the history's little-endian bytes: cheap, stable across
  // processes, and spreads consecutive item ids across shards.
  uint64_t h = 1469598103934665603ull;
  for (int id : request.history) {
    uint32_t u = static_cast<uint32_t>(id);
    for (int b = 0; b < 4; ++b) {
      h ^= (u >> (8 * b)) & 0xFFu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

size_t Router::ShardOf(const serve::RecommendRequest& request) const {
  if (shards_.empty()) return 0;
  return static_cast<size_t>(UserHash(request) % shards_.size());
}

bool Router::Start(std::string* error) {
  if (options_.workers.empty()) {
    if (error != nullptr) *error = "router needs at least one worker";
    return false;
  }
  if (shards_.empty()) {
    for (const std::string& endpoint : options_.workers) {
      auto shard = std::make_unique<Shard>();
      if (!ParseEndpoint(endpoint, &shard->host, &shard->port)) {
        if (error != nullptr) *error = "bad worker endpoint '" + endpoint + "'";
        shards_.clear();
        return false;
      }
      RpcClientOptions copts = options_.client;
      copts.host = shard->host;
      copts.port = shard->port;
      shard->client = std::make_unique<RpcClient>(copts);
      shards_.push_back(std::move(shard));
    }
  }
  server_.Handle(
      kMethodPing,
      [](const std::string& request, std::string* response,
         std::string* /*error*/) {
        *response = request;
        return true;
      });
  server_.Handle(
      kMethodRecommend,
      [this](const std::string& request, std::string* response,
             std::string* err) {
        serve::RecommendRequest req;
        if (!DecodeRecommendRequest(request, &req, err)) return false;
        serve::RecommendResponse resp;
        if (!Forward(req, &resp, err)) return false;
        *response = EncodeRecommendResponse(resp);
        return true;
      });
  if (!server_.Start(error)) return false;
  obs::Log(obs::LogLevel::kInfo, "[net] router on port %d over %zu workers",
           server_.port(), shards_.size());
  return true;
}

void Router::BeginDrain() { server_.BeginDrain(); }

bool Router::WaitDrained(double timeout_s) {
  return server_.WaitDrained(timeout_s);
}

void Router::Stop() { server_.Stop(); }

bool Router::Forward(const serve::RecommendRequest& request,
                     serve::RecommendResponse* response, std::string* error) {
  if (shards_.empty()) {
    if (error != nullptr) *error = "router not started";
    return false;
  }
  const size_t n = shards_.size();
  const size_t home = ShardOf(request);

  // Snapshot the rotation: ring order from the home shard, with shards
  // inside their dead-cooldown window demoted to last-resort (they are
  // still tried if everything else fails — a cooling shard beats a
  // dropped request).
  std::vector<size_t> order;
  std::vector<size_t> cooling;
  order.reserve(n);
  {
    const double now = obs::NowMicros();
    obs::MutexLock lock(mu_);
    for (size_t off = 0; off < n; ++off) {
      const size_t idx = (home + off) % n;
      const Shard& s = *shards_[idx];
      if (!s.healthy && now < s.dead_until_us) {
        cooling.push_back(idx);
      } else {
        order.push_back(idx);
      }
    }
  }
  order.insert(order.end(), cooling.begin(), cooling.end());

  std::string last_error = "no shard reachable";
  for (size_t idx : order) {
    Shard& s = *shards_[idx];
    std::string err;
    serve::RecommendResponse resp;
    if (CallRecommend(s.client.get(), request, &resp, &err)) {
      RouterMetrics::Get().requests.Increment();
      {
        obs::MutexLock lock(mu_);
        s.healthy = true;
        s.requests++;
        if (idx != home) shards_[home]->failovers++;
      }
      if (idx != home) RouterMetrics::Get().failovers.Increment();
      *response = std::move(resp);
      return true;
    }
    last_error = err;
    {
      obs::MutexLock lock(mu_);
      s.healthy = false;
      s.dead_until_us =
          obs::NowMicros() + options_.reprobe_after_ms * 1000.0;
      s.failures++;
    }
    obs::Log(obs::LogLevel::kWarn,
             "[net] shard %zu (%s:%d) failed (%s); failing over", idx,
             s.host.c_str(), s.port, err.c_str());
  }
  RouterMetrics::Get().failures.Increment();
  if (error != nullptr) *error = "all shards failed: " + last_error;
  return false;
}

std::vector<Router::ShardStats> Router::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  obs::MutexLock lock(mu_);
  for (const auto& shard : shards_) {
    ShardStats s;
    s.endpoint = shard->host + ":" + std::to_string(shard->port);
    s.healthy = shard->healthy;
    s.requests = shard->requests;
    s.failures = shard->failures;
    s.failovers = shard->failovers;
    out.push_back(std::move(s));
  }
  return out;
}

std::string Router::StatuszText() const {
  std::string out = "shards " + std::to_string(shards_.size()) + "\n";
  const std::vector<ShardStats> stats = shard_stats();
  for (size_t i = 0; i < stats.size(); ++i) {
    const ShardStats& s = stats[i];
    out += "shard " + std::to_string(i) + " " + s.endpoint + " ";
    out += s.healthy ? "up" : "down";
    out += " requests=" + std::to_string(s.requests) +
           " failures=" + std::to_string(s.failures) +
           " failovers=" + std::to_string(s.failovers) + "\n";
  }
  out += "front: ";
  out += server_.StatuszText();
  return out;
}

}  // namespace lcrec::net

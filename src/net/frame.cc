#include "net/frame.h"

#include <cstring>

#include "ckpt/checkpoint.h"

namespace lcrec::net {
namespace {

uint16_t LoadU16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(b[0] | (b[1] << 8));
}

uint32_t LoadU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t LoadU64(const char* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         (static_cast<uint64_t>(LoadU32(p + 4)) << 32);
}

}  // namespace

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v & 0xFFFF));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF32(std::string* out, float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(out, bits);
}

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

bool WireReader::ReadU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_]);
  pos_ += 1;
  return true;
}

bool WireReader::ReadU16(uint16_t* v) {
  if (remaining() < 2) return false;
  *v = LoadU16(data_ + pos_);
  pos_ += 2;
  return true;
}

bool WireReader::ReadU32(uint32_t* v) {
  if (remaining() < 4) return false;
  *v = LoadU32(data_ + pos_);
  pos_ += 4;
  return true;
}

bool WireReader::ReadU64(uint64_t* v) {
  if (remaining() < 8) return false;
  *v = LoadU64(data_ + pos_);
  pos_ += 8;
  return true;
}

bool WireReader::ReadI32(int32_t* v) {
  uint32_t u = 0;
  if (!ReadU32(&u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

bool WireReader::ReadF32(float* v) {
  uint32_t bits = 0;
  if (!ReadU32(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool WireReader::ReadF64(double* v) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool WireReader::ReadBytes(size_t n, std::string* v) {
  if (remaining() < n) return false;
  v->assign(data_ + pos_, n);
  pos_ += n;
  return true;
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes);
  PutU32(&out, kFrameMagic);
  PutU16(&out, kFrameVersion);
  PutU16(&out, static_cast<uint16_t>(frame.type));
  PutU32(&out, frame.method);
  PutU64(&out, frame.request_id);
  PutU32(&out, static_cast<uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  // CRC over everything after the magic (version..payload inclusive), so
  // a corrupted header field is caught the same as a corrupted payload.
  const uint32_t crc = ckpt::Crc32(out.data() + 4, out.size() - 4);
  PutU32(&out, crc);
  return out;
}

FrameStatus DecodeFrame(const char* data, size_t size, Frame* out,
                        size_t* frame_len, std::string* error,
                        size_t max_payload) {
  if (size < 4) return FrameStatus::kNeedMore;
  if (LoadU32(data) != kFrameMagic) {
    if (error) *error = "bad frame magic";
    return FrameStatus::kBad;
  }
  if (size < kFrameHeaderBytes) return FrameStatus::kNeedMore;

  const uint16_t version = LoadU16(data + 4);
  const uint16_t type = LoadU16(data + 6);
  const uint32_t method = LoadU32(data + 8);
  const uint64_t request_id = LoadU64(data + 12);
  const uint32_t payload_len = LoadU32(data + 20);

  if (version != kFrameVersion) {
    if (error) *error = "unsupported frame version";
    return FrameStatus::kBad;
  }
  if (type != static_cast<uint16_t>(FrameType::kRequest) &&
      type != static_cast<uint16_t>(FrameType::kResponse) &&
      type != static_cast<uint16_t>(FrameType::kError)) {
    if (error) *error = "unknown frame type";
    return FrameStatus::kBad;
  }
  if (payload_len > max_payload) {
    // Bounded reject: surface who asked so the server can answer with an
    // error frame instead of buffering an attacker-controlled length.
    out->type = static_cast<FrameType>(type);
    out->method = method;
    out->request_id = request_id;
    out->payload.clear();
    if (error) *error = "frame payload over limit";
    return FrameStatus::kTooLarge;
  }

  const size_t total =
      kFrameHeaderBytes + static_cast<size_t>(payload_len) + kFrameTrailerBytes;
  if (size < total) return FrameStatus::kNeedMore;

  const uint32_t want_crc = LoadU32(data + kFrameHeaderBytes + payload_len);
  const uint32_t got_crc =
      ckpt::Crc32(data + 4, kFrameHeaderBytes - 4 + payload_len);
  if (want_crc != got_crc) {
    if (error) *error = "frame crc mismatch";
    return FrameStatus::kBad;
  }

  out->type = static_cast<FrameType>(type);
  out->method = method;
  out->request_id = request_id;
  out->payload.assign(data + kFrameHeaderBytes, payload_len);
  *frame_len = total;
  return FrameStatus::kOk;
}

FrameStatus DecodeFrame(const std::string& buf, Frame* out, size_t* frame_len,
                        std::string* error, size_t max_payload) {
  return DecodeFrame(buf.data(), buf.size(), out, frame_len, error,
                     max_payload);
}

}  // namespace lcrec::net

#ifndef LCREC_NET_CODEC_H_
#define LCREC_NET_CODEC_H_

#include <string>

#include "serve/request.h"

namespace lcrec::net {

/// Wire codecs for the serve::Recommend contract. The full in-process
/// surface crosses the socket: shed reasons (Status), degrade tier +
/// label, deadline budgets, cache/coalesce/inline flags and per-request
/// latency, so a remote caller sees exactly what an in-process caller
/// sees and the router can hand back worker responses byte-for-byte.
/// Decoders are two-phase: validate into locals, then assign, so a
/// malformed payload never leaves a partially-written struct behind.

std::string EncodeRecommendRequest(const serve::RecommendRequest& req);

/// Returns false (and fills *error) on malformed bytes; bounds every
/// length field before trusting it.
bool DecodeRecommendRequest(const std::string& payload,
                            serve::RecommendRequest* out, std::string* error);

std::string EncodeRecommendResponse(const serve::RecommendResponse& resp);

/// The degrade label travels as a string and is re-interned into the
/// closed label set on decode (RecommendResponse::degrade_label is a
/// `const char*` pointing at static storage); an unrecognized label
/// falls back to DegradeLevelName(degrade).
bool DecodeRecommendResponse(const std::string& payload,
                             serve::RecommendResponse* out,
                             std::string* error);

}  // namespace lcrec::net

#endif  // LCREC_NET_CODEC_H_

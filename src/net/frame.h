#ifndef LCREC_NET_FRAME_H_
#define LCREC_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace lcrec::net {

/// Binary RPC wire format (DESIGN.md §15): length-prefixed frames over a
/// TCP byte stream, CRC-checksummed so a torn or bit-flipped frame is
/// rejected rather than misparsed. One frame on the wire:
///
///   u32 magic "LRPC"   u16 version   u16 type
///   u32 method         u64 request_id
///   u32 payload_len    payload bytes
///   u32 crc32 over every byte after the magic and before the crc
///
/// All integers little-endian. A request and its response share a
/// request id (per-connection, chosen by the client); an error frame
/// carries a human-readable reason as its payload. The decoder is
/// two-phase in the style of ckpt::DecodeCheckpoint: it validates the
/// complete frame (bounds, version, type, CRC) before writing anything
/// to the output, so a bad frame never leaves a partially-mutated
/// result behind.

inline constexpr uint32_t kFrameMagic = 0x4350524Cu;  // "LRPC" little-endian
inline constexpr uint16_t kFrameVersion = 1;
/// Fixed header bytes before the payload (magic..payload_len).
inline constexpr size_t kFrameHeaderBytes = 24;
/// Trailer: the CRC32.
inline constexpr size_t kFrameTrailerBytes = 4;
/// Default ceiling on payload size; a peer announcing more is rejected
/// without buffering (bounded reject — the stream is then untrusted).
inline constexpr size_t kDefaultMaxPayload = 1u << 20;

enum class FrameType : uint16_t {
  kRequest = 1,
  kResponse = 2,
  /// Response-direction frame whose payload is an error string (unknown
  /// method, undecodable request payload, handler failure).
  kError = 3,
};

struct Frame {
  FrameType type = FrameType::kRequest;
  uint32_t method = 0;
  uint64_t request_id = 0;
  std::string payload;
};

/// Serializes `frame` to wire bytes (header + payload + crc).
std::string EncodeFrame(const Frame& frame);

enum class FrameStatus {
  kOk = 0,     // one complete valid frame decoded
  kNeedMore,   // prefix of a plausible frame; read more bytes
  kBad,        // stream is broken (bad magic/version/type/CRC): close it
  kTooLarge,   // announced payload over max_payload; header fields of
               // the offending frame are filled in so the server can
               // answer with a bounded error frame before closing
};

/// Decodes the first frame in `data[0, size)`. On kOk fills `*out` and
/// `*frame_len` (bytes consumed). On kTooLarge fills the header fields
/// of `*out` (type/method/request_id; payload empty) and leaves
/// `*frame_len` untouched. On kBad/kNeedMore nothing is written except
/// `*error` (kBad only). Never reads past `size`, whatever the bytes.
FrameStatus DecodeFrame(const char* data, size_t size, Frame* out,
                        size_t* frame_len, std::string* error,
                        size_t max_payload = kDefaultMaxPayload);

/// String-buffer convenience over the pointer form.
FrameStatus DecodeFrame(const std::string& buf, Frame* out, size_t* frame_len,
                        std::string* error,
                        size_t max_payload = kDefaultMaxPayload);

// --- Payload primitives (shared by the codecs in codec.h) ----------------

void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI32(std::string* out, int32_t v);
void PutF32(std::string* out, float v);
void PutF64(std::string* out, double v);

/// Bounds-checked forward-only cursor over a byte buffer. Every Read
/// returns false (leaving the output untouched) instead of reading past
/// the end, so decode loops stay total on arbitrary input.
class WireReader {
 public:
  WireReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::string& buf)
      : data_(buf.data()), size_(buf.size()) {}

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  bool ReadU8(uint8_t* v);
  bool ReadU16(uint16_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadI32(int32_t* v);
  bool ReadF32(float* v);
  bool ReadF64(double* v);
  /// Reads `n` raw bytes into `*v` (replacing its contents).
  bool ReadBytes(size_t n, std::string* v);

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace lcrec::net

#endif  // LCREC_NET_FRAME_H_

#ifndef LCREC_REC_RECOMMENDER_H_
#define LCREC_REC_RECOMMENDER_H_

#include <functional>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "data/dataset.h"
#include "rec/metrics.h"

namespace lcrec::rec {

/// Common interface of every score-based sequential recommender (all the
/// Table III baselines). Fit() trains on the leave-one-out training split;
/// ScoreAllItems() produces one score per catalog item for full ranking.
class ScoringRecommender {
 public:
  virtual ~ScoringRecommender() = default;

  virtual std::string name() const = 0;
  virtual void Fit(const data::Dataset& dataset) = 0;
  virtual std::vector<float> ScoreAllItems(
      const std::vector<int>& history) const = 0;

  /// Learned item embedding matrix if the model has one (used to build
  /// the collaborative hard negatives of Table V); nullptr otherwise.
  virtual const core::Tensor* ItemEmbeddings() const { return nullptr; }
};

/// Full-ranking evaluation of a scoring model over the test split.
/// `max_users` bounds the evaluated users (<=0: all).
RankingMetrics EvaluateScoring(const ScoringRecommender& model,
                               const data::Dataset& dataset,
                               int max_users = -1);

/// Full-ranking evaluation of a generative model: `top_items` maps a test
/// context to a ranked list of item ids (e.g. from constrained beam
/// search); items absent from the list count as unranked.
RankingMetrics EvaluateGenerative(
    const std::function<std::vector<int>(const std::vector<int>&)>& top_items,
    const data::Dataset& dataset, int max_users = -1);

}  // namespace lcrec::rec

#endif  // LCREC_REC_RECOMMENDER_H_

#ifndef LCREC_REC_METRICS_H_
#define LCREC_REC_METRICS_H_

#include <string>
#include <vector>

namespace lcrec::rec {

/// Top-K ranking metrics of Section IV-A3: HR@{1,5,10} and NDCG@{5,10}.
struct RankingMetrics {
  double hr1 = 0.0;
  double hr5 = 0.0;
  double hr10 = 0.0;
  double ndcg5 = 0.0;
  double ndcg10 = 0.0;
  int64_t count = 0;

  /// Accumulates one evaluation instance given the 0-based rank of the
  /// ground-truth item (negative = not ranked / outside the beam).
  void AddRank(int rank);

  /// Divides the accumulators by count, producing the mean metrics.
  RankingMetrics Mean() const;

  std::string ToString() const;
};

/// 0-based rank of `target` under descending `scores`; ties broken by
/// item id (deterministic).
int RankOf(const std::vector<float>& scores, int target);

/// 0-based position of `target` in a ranked id list, or -1.
int RankInList(const std::vector<int>& ranked, int target);

}  // namespace lcrec::rec

#endif  // LCREC_REC_METRICS_H_

#ifndef LCREC_REC_NEGATIVES_H_
#define LCREC_REC_NEGATIVES_H_

#include <functional>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"
#include "data/dataset.h"

namespace lcrec::rec {

/// Per-user hard negatives for the Table V probe: for each user, the item
/// most similar (cosine) to the test target under `item_embeddings`
/// ([num_items, d]) that is not the target itself. With text embeddings
/// this yields "language" negatives; with a trained SASRec's item
/// embeddings, "collaborative" negatives.
std::vector<int> HardNegatives(const data::Dataset& dataset,
                               const core::Tensor& item_embeddings);

/// Per-user uniformly random negatives (!= target).
std::vector<int> RandomNegatives(const data::Dataset& dataset,
                                 core::Rng& rng);

/// Fraction of users for which `scorer(history, target)` exceeds
/// `scorer(history, negative)` (ties count half). `max_users` <= 0
/// evaluates everyone.
double PairwiseAccuracy(
    const std::function<float(const std::vector<int>&, int)>& scorer,
    const data::Dataset& dataset, const std::vector<int>& negatives,
    int max_users = -1);

}  // namespace lcrec::rec

#endif  // LCREC_REC_NEGATIVES_H_

#include "rec/recommender.h"

#include <algorithm>

namespace lcrec::rec {

RankingMetrics EvaluateScoring(const ScoringRecommender& model,
                               const data::Dataset& dataset, int max_users) {
  RankingMetrics acc;
  int users = dataset.num_users();
  if (max_users > 0) users = std::min(users, max_users);
  for (int u = 0; u < users; ++u) {
    std::vector<float> scores = model.ScoreAllItems(dataset.TestContext(u));
    acc.AddRank(RankOf(scores, dataset.TestTarget(u)));
  }
  return acc.Mean();
}

RankingMetrics EvaluateGenerative(
    const std::function<std::vector<int>(const std::vector<int>&)>& top_items,
    const data::Dataset& dataset, int max_users) {
  RankingMetrics acc;
  int users = dataset.num_users();
  if (max_users > 0) users = std::min(users, max_users);
  for (int u = 0; u < users; ++u) {
    std::vector<int> ranked = top_items(dataset.TestContext(u));
    acc.AddRank(RankInList(ranked, dataset.TestTarget(u)));
  }
  return acc.Mean();
}

}  // namespace lcrec::rec

#include "rec/recommender.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace lcrec::rec {

namespace {

/// Cached handles for the evaluation loops (lcrec.rec.eval.*).
struct EvalMetrics {
  obs::Counter& users;
  obs::Histogram& user_latency_ms;

  static EvalMetrics& Get() {
    static EvalMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new EvalMetrics{
          r.GetCounter("lcrec.rec.eval.users"),
          r.GetHistogram("lcrec.rec.eval.user_latency_ms",
                         obs::Histogram::ExponentialBounds(0.1, 1.6, 28)),
      };
    }();
    return *m;
  }
};

}  // namespace

RankingMetrics EvaluateScoring(const ScoringRecommender& model,
                               const data::Dataset& dataset, int max_users) {
  obs::ScopedSpan span("rec.evaluate_scoring");
  EvalMetrics& em = EvalMetrics::Get();
  RankingMetrics acc;
  int users = dataset.num_users();
  if (max_users > 0) users = std::min(users, max_users);
  for (int u = 0; u < users; ++u) {
    double t0 = obs::NowMicros();
    std::vector<float> scores = model.ScoreAllItems(dataset.TestContext(u));
    acc.AddRank(RankOf(scores, dataset.TestTarget(u)));
    em.user_latency_ms.Observe((obs::NowMicros() - t0) / 1000.0);
  }
  em.users.Add(users);
  return acc.Mean();
}

RankingMetrics EvaluateGenerative(
    const std::function<std::vector<int>(const std::vector<int>&)>& top_items,
    const data::Dataset& dataset, int max_users) {
  obs::ScopedSpan span("rec.evaluate_generative");
  EvalMetrics& em = EvalMetrics::Get();
  RankingMetrics acc;
  int users = dataset.num_users();
  if (max_users > 0) users = std::min(users, max_users);
  for (int u = 0; u < users; ++u) {
    double t0 = obs::NowMicros();
    std::vector<int> ranked = top_items(dataset.TestContext(u));
    acc.AddRank(RankInList(ranked, dataset.TestTarget(u)));
    em.user_latency_ms.Observe((obs::NowMicros() - t0) / 1000.0);
  }
  em.users.Add(users);
  return acc.Mean();
}

}  // namespace lcrec::rec

#ifndef LCREC_REC_ZEROSHOT_H_
#define LCREC_REC_ZEROSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "llm/minillm.h"
#include "text/vocab.h"

namespace lcrec::rec {

/// A language-only LM standing in for the paper's zero-shot LLaMA/ChatGPT
/// rows of Table V: it is pretrained on the item text corpus (so it knows
/// the domain's language semantics) but never sees an interaction, a
/// collaborative signal, or an index token. Candidates are scored by the
/// mean log-likelihood of their title given a title-sequence prompt.
class ZeroShotLm {
 public:
  struct Options {
    int d_model = 32;
    int n_layers = 2;
    int n_heads = 4;
    int d_ff = 96;
    int max_seq = 96;
    int epochs = 2;           // "LLaMA" = 2, "ChatGPT" = larger budget
    float learning_rate = 3e-3f;
    int max_history = 5;
    uint64_t seed = 101;
  };

  explicit ZeroShotLm(const Options& options) : options_(options) {}

  /// Pretrains on title -> description language modelling over the
  /// catalog (no interactions).
  void Fit(const data::Dataset& dataset);

  /// Mean per-token log-likelihood of the candidate's title following a
  /// prompt that lists the user's history titles.
  float ScoreCandidate(const std::vector<int>& history, int item) const;

 private:
  Options options_;
  const data::Dataset* dataset_ = nullptr;
  text::Vocabulary vocab_;
  std::unique_ptr<llm::MiniLlm> model_;
};

}  // namespace lcrec::rec

#endif  // LCREC_REC_ZEROSHOT_H_

#include "rec/lcrec.h"

#include <algorithm>
#include <limits>

#include "core/check.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace lcrec::rec {

LcRecConfig LcRecConfig::Small() {
  LcRecConfig cfg;
  cfg.text_embedding_dim = 48;
  cfg.rqvae.input_dim = 48;
  cfg.rqvae.hidden_dim = 64;
  cfg.rqvae.latent_dim = 24;
  cfg.rqvae.levels = 4;
  cfg.rqvae.codebook_size = 48;
  cfg.rqvae.epochs = 120;
  cfg.llm.d_model = 32;
  cfg.llm.n_heads = 4;
  cfg.llm.n_layers = 2;
  cfg.llm.d_ff = 96;
  cfg.llm.max_seq = 96;
  cfg.trainer.epochs = 16;
  cfg.trainer.batch_size = 8;
  cfg.trainer.learning_rate = 5e-3f;
  cfg.instructions.max_history = 8;
  cfg.instructions.seq_targets_per_user = 5;
  return cfg;
}

LcRec::LcRec(const LcRecConfig& config) : config_(config) {}

void LcRec::BuildIndexing(const data::Dataset& dataset) {
  core::Rng rng(config_.seed + 3);
  switch (config_.scheme) {
    case quant::IndexScheme::kLcRec:
    case quant::IndexScheme::kNoUsm: {
      quant::RqVaeConfig vq = config_.rqvae;
      vq.input_dim = config_.text_embedding_dim;
      vq.seed = config_.seed + 1;
      rqvae_ = std::make_unique<quant::RqVae>(vq);
      rqvae_->Train(text_embeddings_);
      indexing_ = quant::ItemIndexing::FromRqVae(
          *rqvae_, text_embeddings_,
          config_.scheme == quant::IndexScheme::kLcRec);
      break;
    }
    case quant::IndexScheme::kRandom:
      indexing_ = quant::ItemIndexing::Random(
          dataset.num_items(), config_.rqvae.levels,
          config_.rqvae.codebook_size, rng);
      break;
    case quant::IndexScheme::kVanillaId:
      indexing_ = quant::ItemIndexing::VanillaId(dataset.num_items());
      break;
  }
}

void LcRec::Fit(const data::Dataset& dataset) {
  obs::ScopedSpan span("rec.lcrec_fit");
  dataset_ = &dataset;

  // Step 1: item text embeddings (stand-in for frozen LLaMA encodings).
  text::TextEncoder encoder(config_.text_embedding_dim, config_.seed);
  std::vector<std::string> docs;
  docs.reserve(dataset.num_items());
  for (int i = 0; i < dataset.num_items(); ++i) {
    docs.push_back(dataset.ItemDocument(i));
  }
  text_embeddings_ = encoder.EncodeBatch(docs);

  // Step 2: item indices (Section III-B).
  BuildIndexing(dataset);
  trie_ = std::make_unique<quant::PrefixTrie>(indexing_);

  // Step 3: vocabulary = language tokens + OOV index tokens.
  vocab_ = text::Vocabulary();
  builder_ = std::make_unique<tasks::InstructionBuilder>(
      &dataset, &indexing_, &vocab_, config_.instructions);
  builder_->RegisterVocabulary();

  // Step 4: the LLM backbone over the extended vocabulary.
  llm::MiniLlmConfig mc = config_.llm;
  mc.vocab_size = vocab_.size();
  mc.seed = config_.seed + 2;
  model_ = std::make_unique<llm::MiniLlm>(mc);
  token_map_ = std::make_unique<llm::IndexTokenMap>(indexing_, vocab_);

  // Step 5: alignment tuning (Section III-C). Each epoch re-renders every
  // example with a freshly sampled template (Section IV-A4).
  llm::LlmTrainer trainer(model_.get(), config_.trainer);
  core::Rng rng(config_.seed + 4);
  std::vector<llm::TrainExample> probe =
      builder_->BuildEpoch(config_.mixture, rng);
  int64_t updates_per_epoch =
      (static_cast<int64_t>(probe.size()) + config_.trainer.batch_size - 1) /
      config_.trainer.batch_size;
  trainer.SetTotalUpdates(updates_per_epoch * config_.trainer.epochs);
  if (config_.trainer.resume) trainer.TryResume();
  // Epochs are regenerated (fresh templates) even when a resume skips
  // them, so the builder's rng stream stays aligned with an uninterrupted
  // run and a mid-epoch cursor indexes the same example set.
  int generated = 0;
  while (trainer.epochs_done() < config_.trainer.epochs &&
         !trainer.stop_requested()) {
    std::vector<llm::TrainExample> examples =
        generated == 0 ? std::move(probe)
                       : builder_->BuildEpoch(config_.mixture, rng);
    ++generated;
    if (generated <= trainer.epochs_done()) continue;  // consumed pre-resume
    float loss = trainer.TrainEpoch(examples);
    // After a health rollback the next iteration re-runs from the
    // restored state on freshly generated templates.
    if (trainer.rolled_back()) continue;
    if (config_.verbose || obs::LogEnabled(obs::LogLevel::kInfo)) {
      obs::LogRaw(obs::LogLevel::kInfo,
                  "[lcrec %s] epoch %lld/%d  %zu examples  loss %.4f",
                  config_.mixture.Name().c_str(),
                  static_cast<long long>(trainer.epochs_done()),
                  config_.trainer.epochs, examples.size(),
                  static_cast<double>(loss));
    }
  }
}

std::vector<int> LcRec::PromptTokens(const std::vector<int>& history) const {
  LCREC_CHECK(builder_ != nullptr);
  std::vector<int> prompt = {text::Vocabulary::kBos};
  std::vector<int> body = builder_->SeqPrompt(history);
  prompt.insert(prompt.end(), body.begin(), body.end());
  return prompt;
}

std::vector<llm::ScoredItem> LcRec::TopK(const std::vector<int>& history,
                                         int k) const {
  // Fit() must run before any inference entry point.
  LCREC_CHECK(model_ != nullptr);
  return llm::GenerateItems(*model_, PromptTokens(history), *trie_,
                            *token_map_, config_.beam_size, k);
}

std::vector<int> LcRec::TopKIds(const std::vector<int>& history, int k) const {
  std::vector<int> ids;
  for (const llm::ScoredItem& s : TopK(history, k)) ids.push_back(s.item);
  return ids;
}

std::vector<llm::ScoredItem> LcRec::TopKFromIntention(
    const std::string& intention, int k) const {
  LCREC_CHECK(model_ != nullptr);
  std::vector<int> prompt = {text::Vocabulary::kBos};
  std::vector<int> body = builder_->IntentionPrompt(intention);
  prompt.insert(prompt.end(), body.begin(), body.end());
  return llm::GenerateItems(*model_, prompt, *trie_, *token_map_,
                            config_.beam_size, k);
}

std::vector<float> LcRec::ScoreAllItems(const std::vector<int>& history) const {
  LCREC_CHECK(dataset_ != nullptr);
  std::vector<float> scores(static_cast<size_t>(dataset_->num_items()),
                            -std::numeric_limits<float>::infinity());
  for (const llm::ScoredItem& s : TopK(history, config_.beam_size)) {
    scores[static_cast<size_t>(s.item)] = s.logprob;
  }
  return scores;
}

float LcRec::ScoreCandidate(const std::vector<int>& history, int item,
                            bool by_title) const {
  LCREC_CHECK(model_ != nullptr);
  std::vector<int> prompt = {text::Vocabulary::kBos};
  std::vector<int> body = builder_->NextItemPrompt(history, by_title);
  prompt.insert(prompt.end(), body.begin(), body.end());
  std::vector<int> continuation = by_title
                                      ? builder_->ItemTitleTokens(item)
                                      : builder_->ItemIndexTokens(item);
  float total = llm::ScoreContinuation(*model_, prompt, continuation);
  return total / static_cast<float>(continuation.size());
}

std::string LcRec::GenerateTitleFromIndices(int item, int levels) const {
  LCREC_CHECK(model_ != nullptr);
  std::vector<int> prompt = {text::Vocabulary::kBos};
  std::vector<int> body = builder_->TitleOfItemPrompt(item, levels);
  prompt.insert(prompt.end(), body.begin(), body.end());
  std::vector<int> out =
      llm::GenerateText(*model_, prompt, 12, text::Vocabulary::kEos);
  return vocab_.Decode(out);
}

core::Tensor LcRec::IndexTokenEmbeddings() const {
  LCREC_CHECK(model_ != nullptr);
  const core::Tensor& table = model_->TokenEmbeddings();
  int d = model_->config().d_model;
  std::vector<int> ids;
  for (const std::string& tok : indexing_.AllTokenStrings()) {
    ids.push_back(vocab_.Id(tok));
  }
  core::Tensor out({static_cast<int64_t>(ids.size()), d});
  for (size_t i = 0; i < ids.size(); ++i) {
    for (int j = 0; j < d; ++j) {
      out.at(static_cast<int64_t>(i) * d + j) =
          table.at(static_cast<int64_t>(ids[i]) * d + j);
    }
  }
  return out;
}

core::Tensor LcRec::TextTokenEmbeddings(int max_tokens) const {
  LCREC_CHECK(model_ != nullptr);
  LCREC_CHECK(dataset_ != nullptr);
  const core::Tensor& table = model_->TokenEmbeddings();
  int d = model_->config().d_model;
  // Tokens appearing in item texts (titles + descriptions).
  std::vector<int> ids;
  std::vector<bool> seen(static_cast<size_t>(vocab_.size()), false);
  for (int i = 0;
       i < dataset_->num_items() && static_cast<int>(ids.size()) < max_tokens;
       ++i) {
    for (int id : vocab_.Encode(dataset_->ItemDocument(i))) {
      if (id <= text::Vocabulary::kUnk || seen[static_cast<size_t>(id)]) {
        continue;
      }
      seen[static_cast<size_t>(id)] = true;
      ids.push_back(id);
      if (static_cast<int>(ids.size()) >= max_tokens) break;
    }
  }
  core::Tensor out({static_cast<int64_t>(ids.size()), d});
  for (size_t i = 0; i < ids.size(); ++i) {
    for (int j = 0; j < d; ++j) {
      out.at(static_cast<int64_t>(i) * d + j) =
          table.at(static_cast<int64_t>(ids[i]) * d + j);
    }
  }
  return out;
}

}  // namespace lcrec::rec

#include "rec/zeroshot.h"

#include <algorithm>

#include "llm/generate.h"
#include "llm/trainer.h"

namespace lcrec::rec {

void ZeroShotLm::Fit(const data::Dataset& dataset) {
  dataset_ = &dataset;
  vocab_ = text::Vocabulary();
  vocab_.AddToken("item");
  vocab_.AddToken("description");
  vocab_.AddToken("then");
  vocab_.AddToken("next");
  for (int i = 0; i < dataset.num_items(); ++i) {
    for (const std::string& tok : text::Tokenize(dataset.ItemDocument(i))) {
      vocab_.AddToken(tok);
    }
  }
  llm::MiniLlmConfig cfg;
  cfg.vocab_size = vocab_.size();
  cfg.d_model = options_.d_model;
  cfg.n_layers = options_.n_layers;
  cfg.n_heads = options_.n_heads;
  cfg.d_ff = options_.d_ff;
  cfg.max_seq = options_.max_seq;
  cfg.seed = options_.seed;
  model_ = std::make_unique<llm::MiniLlm>(cfg);

  std::vector<llm::TrainExample> examples;
  for (int i = 0; i < dataset.num_items(); ++i) {
    llm::TrainExample ex;
    ex.task = "lm";
    ex.prompt = vocab_.Encode("item " + dataset.item(i).title +
                              " description");
    ex.response = vocab_.Encode(dataset.item(i).description);
    if (static_cast<int>(ex.response.size()) > 20) ex.response.resize(20);
    examples.push_back(std::move(ex));
  }
  llm::TrainerOptions topt;
  topt.epochs = options_.epochs;
  topt.batch_size = 8;
  topt.learning_rate = options_.learning_rate;
  topt.seed = options_.seed + 1;
  llm::LlmTrainer trainer(model_.get(), topt);
  trainer.Train(examples);
}

float ZeroShotLm::ScoreCandidate(const std::vector<int>& history,
                                 int item) const {
  // Prompt: the last few history titles; continuation: candidate title.
  std::string prompt_text;
  int keep = std::min<int>(options_.max_history,
                           static_cast<int>(history.size()));
  for (int i = static_cast<int>(history.size()) - keep;
       i < static_cast<int>(history.size()); ++i) {
    prompt_text += "item " + dataset_->item(history[static_cast<size_t>(i)]).title + " then ";
  }
  prompt_text += "next item";
  std::vector<int> prompt = {text::Vocabulary::kBos};
  for (int id : vocab_.Encode(prompt_text)) prompt.push_back(id);
  // Keep the prompt inside the context window.
  int budget = options_.max_seq - 24;
  if (static_cast<int>(prompt.size()) > budget) {
    prompt.erase(prompt.begin() + 1,
                 prompt.begin() + 1 + (static_cast<int>(prompt.size()) - budget));
  }
  std::vector<int> cont = vocab_.Encode(dataset_->item(item).title);
  if (cont.empty()) return -1e9f;
  if (static_cast<int>(prompt.size() + cont.size()) >= options_.max_seq) {
    cont.resize(static_cast<size_t>(options_.max_seq - prompt.size() - 1));
  }
  float total = llm::ScoreContinuation(*model_, prompt, cont);
  return total / static_cast<float>(cont.size());
}

}  // namespace lcrec::rec

#ifndef LCREC_REC_LCREC_H_
#define LCREC_REC_LCREC_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "llm/generate.h"
#include "llm/minillm.h"
#include "llm/trainer.h"
#include "quant/indexing.h"
#include "quant/rqvae.h"
#include "rec/recommender.h"
#include "tasks/instructions.h"
#include "text/encoder.h"
#include "text/vocab.h"

namespace lcrec::rec {

/// End-to-end configuration of the LC-Rec system. The defaults are
/// laptop-scale stand-ins for the paper's setting (LLaMA-7B, H=4 levels of
/// 256 codes, beam 20); see DESIGN.md for the substitution rationale.
struct LcRecConfig {
  quant::IndexScheme scheme = quant::IndexScheme::kLcRec;
  tasks::TaskMixture mixture = tasks::TaskMixture::All();
  tasks::InstructionConfig instructions;
  int text_embedding_dim = 48;
  quant::RqVaeConfig rqvae;       // input_dim overwritten by Fit()
  llm::MiniLlmConfig llm;         // vocab_size overwritten by Fit()
  llm::TrainerOptions trainer;
  int beam_size = 20;             // Section IV-A3: beam size 20
  uint64_t seed = 77;
  bool verbose = false;

  /// A configuration sized for the bundled synthetic datasets.
  static LcRecConfig Small();
};

/// The LC-Rec model (Figure 1): learned item indices (RQ-VAE + USM)
/// integrated into an LLM vocabulary, tuned with the alignment-task
/// mixture, generating recommendations by trie-constrained beam search.
class LcRec : public ScoringRecommender {
 public:
  explicit LcRec(const LcRecConfig& config);

  // ScoringRecommender interface (scores derived from the beam; items
  // outside the beam get -inf). Prefer TopK for generative evaluation.
  std::string name() const override { return "LC-Rec"; }
  void Fit(const data::Dataset& dataset) override;
  std::vector<float> ScoreAllItems(
      const std::vector<int>& history) const override;

  /// Top-k items from constrained beam search over the index trie.
  std::vector<llm::ScoredItem> TopK(const std::vector<int>& history,
                                    int k) const;
  /// Ranked item ids (convenience for EvaluateGenerative).
  std::vector<int> TopKIds(const std::vector<int>& history, int k) const;

  /// Item retrieval from a free-text intention query (Figure 3).
  std::vector<llm::ScoredItem> TopKFromIntention(const std::string& intention,
                                                 int k) const;

  /// Mean per-token log-likelihood of `item` as the next recommendation.
  /// `by_title` scores the item's title instead of its indices — the
  /// "LC-Rec (Title)" variant of Table V.
  float ScoreCandidate(const std::vector<int>& history, int item,
                       bool by_title) const;

  /// Generates an item title conditioned on the first `levels` index
  /// tokens of `item` (Figure 5a / Figure 6 case study).
  std::string GenerateTitleFromIndices(int item, int levels) const;

  /// Embeddings of all item-index tokens / of the catalog's text tokens,
  /// for the PCA visualization of Figure 4.
  core::Tensor IndexTokenEmbeddings() const;
  core::Tensor TextTokenEmbeddings(int max_tokens = 400) const;

  /// The exact prompt TopK() decodes from (BOS + sequential-task body).
  /// lcrec::serve::Server takes this as its PromptBuilder so online and
  /// offline inference share one prompt format (and thus cache keys).
  std::vector<int> PromptTokens(const std::vector<int>& history) const;

  const quant::ItemIndexing& indexing() const { return indexing_; }
  const quant::PrefixTrie& trie() const { return *trie_; }
  const llm::IndexTokenMap& token_map() const { return *token_map_; }
  const llm::MiniLlm& model() const { return *model_; }
  const text::Vocabulary& vocab() const { return vocab_; }
  const tasks::InstructionBuilder& instructions() const { return *builder_; }
  const core::Tensor& text_embeddings() const { return text_embeddings_; }
  const LcRecConfig& config() const { return config_; }

 private:
  void BuildIndexing(const data::Dataset& dataset);

  LcRecConfig config_;
  const data::Dataset* dataset_ = nullptr;
  core::Tensor text_embeddings_;
  std::unique_ptr<quant::RqVae> rqvae_;
  quant::ItemIndexing indexing_ = quant::ItemIndexing::VanillaId(1);
  std::unique_ptr<quant::PrefixTrie> trie_;
  text::Vocabulary vocab_;
  std::unique_ptr<tasks::InstructionBuilder> builder_;
  std::unique_ptr<llm::MiniLlm> model_;
  std::unique_ptr<llm::IndexTokenMap> token_map_;
};

}  // namespace lcrec::rec

#endif  // LCREC_REC_LCREC_H_

#include "rec/negatives.h"

#include <algorithm>

#include "core/check.h"
#include "core/linalg.h"

namespace lcrec::rec {

std::vector<int> HardNegatives(const data::Dataset& dataset,
                               const core::Tensor& item_embeddings) {
  LCREC_CHECK_EQ(item_embeddings.rows(), dataset.num_items());
  core::Tensor sim = core::CosineSimilarity(item_embeddings, item_embeddings);
  int n = dataset.num_items();
  std::vector<int> negatives(static_cast<size_t>(dataset.num_users()));
  for (int u = 0; u < dataset.num_users(); ++u) {
    int target = dataset.TestTarget(u);
    int best = -1;
    float best_sim = -2.0f;
    for (int j = 0; j < n; ++j) {
      if (j == target) continue;
      float s = sim.at(static_cast<int64_t>(target) * n + j);
      if (s > best_sim) {
        best_sim = s;
        best = j;
      }
    }
    negatives[static_cast<size_t>(u)] = best;
  }
  return negatives;
}

std::vector<int> RandomNegatives(const data::Dataset& dataset,
                                 core::Rng& rng) {
  std::vector<int> negatives(static_cast<size_t>(dataset.num_users()));
  for (int u = 0; u < dataset.num_users(); ++u) {
    int target = dataset.TestTarget(u);
    int neg = target;
    while (neg == target) {
      neg = static_cast<int>(rng.Below(dataset.num_items()));
    }
    negatives[static_cast<size_t>(u)] = neg;
  }
  return negatives;
}

double PairwiseAccuracy(
    const std::function<float(const std::vector<int>&, int)>& scorer,
    const data::Dataset& dataset, const std::vector<int>& negatives,
    int max_users) {
  int users = dataset.num_users();
  if (max_users > 0) users = std::min(users, max_users);
  LCREC_CHECK_GE(static_cast<int>(negatives.size()), users);
  double correct = 0.0;
  for (int u = 0; u < users; ++u) {
    std::vector<int> history = dataset.TestContext(u);
    float pos = scorer(history, dataset.TestTarget(u));
    float neg = scorer(history, negatives[static_cast<size_t>(u)]);
    if (pos > neg) {
      correct += 1.0;
    } else if (pos == neg) {
      correct += 0.5;
    }
  }
  return users > 0 ? correct / users : 0.0;
}

}  // namespace lcrec::rec

#include "rec/metrics.h"

#include <cmath>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/registry.h"

namespace lcrec::rec {

void RankingMetrics::AddRank(int rank) {
  static obs::Counter& ranks =
      obs::MetricsRegistry::Global().GetCounter("lcrec.rec.eval.ranks");
  static obs::Counter& misses =
      obs::MetricsRegistry::Global().GetCounter("lcrec.rec.eval.misses");
  ranks.Increment();
  ++count;
  if (rank < 0) {
    misses.Increment();
    return;
  }
  double gain = 1.0 / std::log2(static_cast<double>(rank) + 2.0);
  if (rank < 1) hr1 += 1.0;
  if (rank < 5) {
    hr5 += 1.0;
    ndcg5 += gain;
  }
  if (rank < 10) {
    hr10 += 1.0;
    ndcg10 += gain;
  }
}

RankingMetrics RankingMetrics::Mean() const {
  RankingMetrics m = *this;
  if (count > 0) {
    double inv = 1.0 / static_cast<double>(count);
    m.hr1 *= inv;
    m.hr5 *= inv;
    m.hr10 *= inv;
    m.ndcg5 *= inv;
    m.ndcg10 *= inv;
  }
  return m;
}

std::string RankingMetrics::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "HR@1 %.4f  HR@5 %.4f  HR@10 %.4f  NDCG@5 %.4f  NDCG@10 %.4f",
                hr1, hr5, hr10, ndcg5, ndcg10);
  return buf;
}

int RankOf(const std::vector<float>& scores, int target) {
  float t = scores[static_cast<size_t>(target)];
  int rank = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (static_cast<int>(i) == target) continue;
    if (scores[i] > t || (scores[i] == t && static_cast<int>(i) < target)) {
      ++rank;
    }
  }
  return rank;
}

int RankInList(const std::vector<int>& ranked, int target) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i] == target) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace lcrec::rec

#ifndef LCREC_OBS_LOG_H_
#define LCREC_OBS_LOG_H_

namespace lcrec::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Threshold parsed once from `LCREC_LOG_LEVEL` ("debug", "info",
/// "warn", "error", or 0-3). Defaults to warn, so the per-epoch info
/// diagnostics stay silent in tests and CI.
LogLevel CurrentLogLevel();

bool LogEnabled(LogLevel level);

/// printf-style leveled logging to stderr, prefixed "[lcrec:<level>] ".
/// Messages below the threshold are dropped before formatting.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void Log(LogLevel level, const char* fmt, ...);

/// Like Log but skips the threshold check — for call sites that also
/// honor an explicit opt-in (e.g. a config `verbose` flag):
///   if (cfg.verbose || obs::LogEnabled(kInfo)) obs::LogRaw(kInfo, ...);
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void LogRaw(LogLevel level, const char* fmt, ...);

}  // namespace lcrec::obs

#endif  // LCREC_OBS_LOG_H_

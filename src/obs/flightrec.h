#ifndef LCREC_OBS_FLIGHTREC_H_
#define LCREC_OBS_FLIGHTREC_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <vector>

namespace lcrec::obs {

/// Event kinds the flight recorder distinguishes. Annotation beyond the
/// kind travels in `detail` (a static string) and two integer payloads.
enum class FrKind : uint8_t {
  kNone = 0,      // empty ring slot
  kShed,          // request shed; detail = reason, a = request id
  kSlowRequest,   // latency over threshold; a = request id, b = latency_us
  kHealthTrip,    // ckpt::HealthGuard trip; a = trip no, b = max retries
  kBatchTick,     // one BatchEngine tick; a = lanes, b = fed tokens
  kCheckFail,     // LCREC_CHECK failure (recorded by the failure handler)
  kLockOrder,     // lock-order cycle finding (obs::Mutex detector)
  kLongHold,      // mutex held over threshold; detail = name, a = hold_us
  kMark,          // free-form annotation from tests/tools
  kDegrade,       // degraded response; detail = tier, a = request id
  kBreaker,       // circuit-breaker transition; detail = new state
  kWatchdog,      // scheduler stall; a = stall_us
};

const char* FrKindName(FrKind kind);

/// One recorded flight event. `detail` must be a string with process
/// lifetime (a literal); the recorder stores the pointer, never a copy.
struct FrEvent {
  double ts_us = 0.0;           // obs::NowMicros time base
  int tid = 0;                  // recording thread (trace.h thread ids)
  FrKind kind = FrKind::kNone;
  const char* detail = nullptr;
  int64_t a = 0;
  int64_t b = 0;
};

/// Always-on crash/black-box recorder: a fixed-size lock-free ring of
/// recent annotated events per thread. Record() touches only the calling
/// thread's ring — relaxed stores into the next slot plus one release
/// store of the head index, no locks, no allocation after the first
/// event on a thread — so it is cheap enough to leave on in production
/// serving paths and safe to call from almost anywhere (not
/// async-signal-safe: the first event on a thread registers the ring
/// under a mutex).
///
/// Snapshot()/dump readers run on any thread and read other threads'
/// rings through the same atomics, so they are TSan-clean; a slot being
/// overwritten concurrently with a read can yield a mixed event, which a
/// best-effort crash dump tolerates by design. The dump entry points are
/// wired into the LCREC_CHECK failure handler (core/check.cc), the
/// ckpt::HealthGuard trip path, and serve::Server::DumpFlightRecorder().
class FlightRecorder {
 public:
  /// Slots per thread ring. 256 events outlive any burst worth seeing in
  /// a crash dump (a few seconds of batch ticks plus every recent shed).
  static constexpr size_t kRingSlots = 256;

  static FlightRecorder& Global();

  void Record(FrKind kind, const char* detail, int64_t a = 0, int64_t b = 0);

  /// Merged view of every thread's ring, oldest first (sorted by ts_us).
  /// Empty slots are skipped; at most kRingSlots events per thread.
  std::vector<FrEvent> Snapshot() const;

  /// One JSON object per event:
  ///   {"ts_us":...,"tid":...,"kind":"shed","detail":"shed_queue_full",
  ///    "a":...,"b":...}
  void WriteJsonl(std::ostream& out) const;

  /// Dumps the ring contents to stderr between recognizable marker
  /// lines, for the LCREC_CHECK failure handler and operator SIGQUIT-
  /// style use. `why` names the trigger. Also honors LCREC_FLIGHTREC_OUT
  /// (writes the same JSONL to that path). Never throws, never checks.
  void DumpToStderr(const char* why) const;

  /// Total events ever recorded (across wraparound), for tests.
  int64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }

  struct Ring;  // public name so flightrec.cc internals can refer to it

 private:
  FlightRecorder() = default;

  struct Slot {
    std::atomic<double> ts_us{0.0};
    std::atomic<const char*> detail{nullptr};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
    std::atomic<uint8_t> kind{0};
  };

  Ring& ThisThreadRing();

  std::atomic<int64_t> recorded_{0};
};

}  // namespace lcrec::obs

#endif  // LCREC_OBS_FLIGHTREC_H_

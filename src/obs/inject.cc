#include "obs/inject.h"

namespace lcrec::obs {

bool ParseInjectRate(const std::string& text, double* rate) {
  if (text.empty()) return false;
  // Accept only [0-9.] so "1e9", "+1", and "0x1" are rejected — the
  // grammar wants a plain decimal probability.
  int dots = 0;
  for (char c : text) {
    if (c == '.') {
      if (++dots > 1) return false;
    } else if (c < '0' || c > '9') {
      return false;
    }
  }
  if (text == ".") return false;
  double value = std::stod(text);
  if (value <= 0.0 || value > 1.0) return false;
  *rate = value;
  return true;
}

double InjectRng::NextUniform() {
  // splitmix64 (Steele et al.): one fetch_add of the golden-gamma keeps
  // the stream deterministic under concurrency.
  uint64_t z = state_.fetch_add(0x9e3779b97f4a7c15ull,
                                std::memory_order_relaxed) +
               0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace lcrec::obs

#include "obs/perfgate.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/export.h"

namespace lcrec::obs {

namespace {

/// Returns the balanced {...} object starting at json[open] (which must
/// be '{'), or "" on malformed input. Quote-aware so braces inside
/// string values cannot desynchronize the walk.
std::string BalancedObject(const std::string& json, size_t open) {
  if (open >= json.size() || json[open] != '{') return "";
  int depth = 0;
  bool in_string = false;
  for (size_t p = open; p < json.size(); ++p) {
    char c = json[p];
    if (in_string) {
      if (c == '\\') {
        ++p;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) return json.substr(open, p - open + 1);
    }
  }
  return "";
}

size_t FindKey(const std::string& json, const std::string& key) {
  return json.find("\"" + key + "\"");
}

}  // namespace

std::string PerfRecordJson(const PerfRecord& record) {
  std::string out = "{\n  \"manifest\": " + RunManifestJson(record.manifest) +
                    ",\n  \"metrics\": {\n";
  size_t i = 0;
  for (const auto& kv : record.metrics) {
    out += "    \"" + JsonEscape(kv.first) +
           "\": {\"value\":" + JsonNumber(kv.second.value) +
           ",\"tolerance\":" + JsonNumber(kv.second.tolerance) + "}";
    if (++i < record.metrics.size()) out += ",";
    out += "\n";
  }
  out += "  }\n}\n";
  return out;
}

bool ParsePerfRecordJson(const std::string& json, PerfRecord* out) {
  PerfRecord record;
  size_t mpos = FindKey(json, "manifest");
  if (mpos != std::string::npos) {
    size_t open = json.find('{', mpos + 1);
    std::string obj = BalancedObject(json, open);
    if (!obj.empty()) ParseRunManifestJson(obj, &record.manifest);
  }
  size_t pos = FindKey(json, "metrics");
  if (pos == std::string::npos) return false;
  size_t open = json.find('{', pos + std::string("\"metrics\"").size());
  std::string metrics = BalancedObject(json, open);
  if (metrics.empty()) return false;
  // Walk the metrics object: every key at depth 1 names a metric whose
  // value is a flat {"value":...,"tolerance":...} object.
  size_t p = 1;  // past the opening brace
  while (p < metrics.size()) {
    size_t key_open = metrics.find('"', p);
    if (key_open == std::string::npos) break;
    size_t key_close = metrics.find('"', key_open + 1);
    while (key_close != std::string::npos && metrics[key_close - 1] == '\\') {
      key_close = metrics.find('"', key_close + 1);
    }
    if (key_close == std::string::npos) break;
    std::string key;
    ExtractJsonString("{\"k\":" +
                          metrics.substr(key_open, key_close - key_open + 1) +
                          "}",
                      "k", &key);
    size_t obj_open = metrics.find('{', key_close + 1);
    if (obj_open == std::string::npos) break;
    std::string obj = BalancedObject(metrics, obj_open);
    if (obj.empty()) break;
    PerfMetric metric;
    if (ExtractJsonNumber(obj, "value", &metric.value)) {
      ExtractJsonNumber(obj, "tolerance", &metric.tolerance);
      record.metrics[key] = metric;
    }
    p = obj_open + obj.size();
  }
  *out = std::move(record);
  return true;
}

bool WritePerfRecordFile(const std::string& path, const PerfRecord& record) {
  if (path.empty()) return false;
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return false;
  out << PerfRecordJson(record);
  return out.good();
}

bool ReadPerfRecordFile(const std::string& path, PerfRecord* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParsePerfRecordJson(buf.str(), out);
}

bool HigherIsBetter(const std::string& metric) {
  auto ends_with = [&metric](const char* suffix) {
    std::string s(suffix);
    return metric.size() >= s.size() &&
           metric.compare(metric.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with("/gflops") || ends_with("/ops_per_sec") ||
         ends_with("/items_per_sec") || ends_with("/req_per_sec");
}

PerfGateResult ComparePerf(const PerfRecord& baseline,
                           const PerfRecord& current) {
  PerfGateResult result;
  for (const auto& kv : baseline.metrics) {
    PerfDiff d;
    d.name = kv.first;
    d.baseline = kv.second.value;
    d.tolerance = kv.second.tolerance;
    d.higher_is_better = HigherIsBetter(kv.first);
    auto it = current.metrics.find(kv.first);
    if (it == current.metrics.end()) {
      d.missing = true;
      result.ok = false;
      result.diffs.push_back(std::move(d));
      continue;
    }
    d.current = it->second.value;
    if (d.baseline != 0.0) {
      d.change = (d.current - d.baseline) / std::abs(d.baseline);
    }
    d.regressed = d.higher_is_better ? d.change < -d.tolerance
                                     : d.change > d.tolerance;
    if (d.regressed) result.ok = false;
    result.diffs.push_back(std::move(d));
  }
  for (const auto& kv : current.metrics) {
    if (baseline.metrics.count(kv.first) != 0) continue;
    PerfDiff d;
    d.name = kv.first;
    d.current = kv.second.value;
    d.tolerance = kv.second.tolerance;
    d.higher_is_better = HigherIsBetter(kv.first);
    d.added = true;
    result.diffs.push_back(std::move(d));
  }
  return result;
}

std::string FormatPerfDiff(const PerfGateResult& result) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-34s %12s %12s %9s %7s  %s\n", "metric",
                "baseline", "current", "change", "tol", "status");
  out += line;
  for (const PerfDiff& d : result.diffs) {
    const char* status = "ok";
    if (d.missing) {
      status = "MISSING";
    } else if (d.added) {
      status = "new";
    } else if (d.regressed) {
      status = "REGRESSED";
    }
    std::snprintf(line, sizeof(line),
                  "%-34s %12.4f %12.4f %+8.1f%% %6.0f%%  %s\n", d.name.c_str(),
                  d.baseline, d.current, 100.0 * d.change, 100.0 * d.tolerance,
                  status);
    out += line;
  }
  out += result.ok ? "perfgate: PASS\n" : "perfgate: FAIL (regression)\n";
  return out;
}

}  // namespace lcrec::obs

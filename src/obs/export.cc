#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/manifest.h"

namespace lcrec::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string EnvOr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::string(v) : fallback;
}

bool ExtractJsonString(const std::string& json, const std::string& key,
                       std::string* out) {
  std::string pattern = "\"" + key + "\":\"";
  size_t p = json.find(pattern);
  if (p == std::string::npos) return false;
  p += pattern.size();
  std::string value;
  while (p < json.size()) {
    char c = json[p];
    if (c == '"') break;
    if (c == '\\' && p + 1 < json.size()) {
      char esc = json[p + 1];
      switch (esc) {
        case 'n':
          value += '\n';
          break;
        case 'r':
          value += '\r';
          break;
        case 't':
          value += '\t';
          break;
        default:
          value += esc;  // \" \\ \/ and anything else: literal
      }
      p += 2;
      continue;
    }
    value += c;
    ++p;
  }
  *out = std::move(value);
  return true;
}

bool ExtractJsonNumber(const std::string& json, const std::string& key,
                       double* out) {
  std::string pattern = "\"" + key + "\":";
  size_t p = json.find(pattern);
  if (p == std::string::npos) return false;
  p += pattern.size();
  while (p < json.size() && (json[p] == ' ' || json[p] == '\t')) ++p;
  char* end = nullptr;
  double v = std::strtod(json.c_str() + p, &end);
  if (end == json.c_str() + p) return false;
  *out = v;
  return true;
}

JsonlWriter::JsonlWriter(const std::string& path) {
  if (!path.empty()) out_.open(path, std::ios::out | std::ios::trunc);
}

void JsonlWriter::WriteLine(const std::string& json_object) {
  if (!out_.is_open()) return;
  out_ << json_object << '\n';
  out_.flush();
}

ResultEmitter::ResultEmitter(const std::string& bench, const std::string& path,
                             const std::string& config_json)
    : bench_(bench),
      config_json_(config_json.empty() ? "{}" : config_json),
      writer_(path) {
  if (writer_.enabled()) writer_.WriteLine(RunManifestHeaderRow());
}

void ResultEmitter::Emit(const std::string& metric, double value) {
  if (!writer_.enabled()) return;
  writer_.WriteLine("{\"bench\":\"" + JsonEscape(bench_) + "\",\"metric\":\"" +
                    JsonEscape(metric) + "\",\"value\":" + JsonNumber(value) +
                    ",\"config\":" + config_json_ + "}");
}

}  // namespace lcrec::obs

#include "obs/flops.h"

#include <string>

#include "obs/registry.h"
#include "obs/sync.h"
#include "obs/trace.h"

namespace lcrec::obs {

namespace {

Counter& TotalFlopsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("lcrec.flops.total");
  return c;
}

Counter& TotalBytesCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("lcrec.bytes.total");
  return c;
}

Mutex& SpanCostMu() {
  static Mutex* mu = new Mutex("obs.flops.spancost", 90);
  return *mu;
}

std::map<std::string, SpanCost>& SpanCostTable() {
  static auto* table = new std::map<std::string, SpanCost>();
  return *table;
}

}  // namespace

KernelFlops::KernelFlops(const char* kernel)
    : flops_(MetricsRegistry::Global().GetCounter(std::string("lcrec.flops.") +
                                                  kernel)),
      bytes_(MetricsRegistry::Global().GetCounter(std::string("lcrec.bytes.") +
                                                  kernel)) {}

void KernelFlops::Add(int64_t flops, int64_t bytes) {
  flops_.Add(flops);
  bytes_.Add(bytes);
  TotalFlopsCounter().Add(flops);
  TotalBytesCounter().Add(bytes);
  if (!SpanStacksEnabled()) return;
  const char* leaf = CurrentLeafSpan();
  if (leaf == nullptr) return;
  MutexLock lock(SpanCostMu());
  SpanCost& cost = SpanCostTable()[leaf];
  cost.flops += flops;
  cost.bytes += bytes;
}

int64_t TotalFlops() { return TotalFlopsCounter().value(); }

int64_t TotalBytes() { return TotalBytesCounter().value(); }

std::map<std::string, SpanCost> SpanCostSnapshot() {
  MutexLock lock(SpanCostMu());
  return SpanCostTable();
}

void ResetSpanCosts() {
  MutexLock lock(SpanCostMu());
  SpanCostTable().clear();
}

}  // namespace lcrec::obs

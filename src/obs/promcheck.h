#ifndef LCREC_OBS_PROMCHECK_H_
#define LCREC_OBS_PROMCHECK_H_

#include <string>

namespace lcrec::obs {

/// Result of validating one Prometheus text exposition document.
struct PromCheckResult {
  bool ok = true;
  std::string error;  // first violation, with the offending line
  int lines = 0;      // non-empty lines checked
  int families = 0;   // `# TYPE` declarations seen
  int histograms = 0; // histogram families with a verified +Inf == _count
};

/// Validates `text` against the exposition-format rules the registry
/// promises (version 0.0.4 subset, DESIGN.md §7): every line is either
/// `# TYPE <name> <counter|gauge|histogram>` or a sample
/// `<name>[{le="<bound>"}] <value>`; names match the Prometheus grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*; no blank lines; no JSON `null` (non-finite
/// values render as +Inf/-Inf/NaN); each family's TYPE line precedes its
/// samples and is declared once; histogram buckets are cumulative with
/// the +Inf bucket equal to `_count`.
///
/// Shared by the obs conformance test, the live-scrape test, and the
/// debugz CI probe so "parses in our checker" means the same thing in
/// all three places. Stops at the first violation.
PromCheckResult CheckPrometheusExposition(const std::string& text);

}  // namespace lcrec::obs

#endif  // LCREC_OBS_PROMCHECK_H_

#include "obs/sync.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "core/check.h"
#include "obs/flightrec.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

// Lock-discipline detector (absl-Mutex-style). Every obs::Mutex owns a
// LockNode; each thread keeps a stack of currently held nodes. On
// acquisition, every (held, acquiring) pair is an edge in a global
// lock-order graph. New edges take a slow path: capture the acquiring
// thread's context (held locks + live span stack), DFS the graph for a
// path acquiring→…→held — if one exists this acquisition closes a
// cycle, i.e. some interleaving of the recorded paths deadlocks — then
// publish the edge to a lock-free hash table so every later acquisition
// in the same order costs one probe, no lock.
//
// The detector's own state is guarded by a raw std::mutex on purpose:
// instrumenting the instrumentation would recurse. This file is the one
// place in src/ where the lint's raw-sync rule permits std primitives.

namespace lcrec::obs {

namespace sync_internal {

struct LockNode {
  uint32_t id = 0;
  const char* name = nullptr;  // nullptr = anonymous
  int rank = Mutex::kNoRank;
  const void* addr = nullptr;
  bool alive = true;
  std::atomic<int64_t> acquisitions{0};
  std::atomic<int64_t> contended{0};
  std::atomic<int64_t> long_holds{0};
  std::atomic<int64_t> wait_total_us{0};
  std::atomic<int64_t> wait_max_us{0};
  std::atomic<int64_t> hold_total_us{0};
  std::atomic<int64_t> hold_max_us{0};
};

namespace {

struct HeldEntry {
  const Mutex* mu = nullptr;
  LockNode* node = nullptr;
  double acquired_us = 0.0;  // 0 = untimed (anonymous mutex)
};

// Per-thread detector state. A plain (non-pointer) thread_local so it is
// reclaimed at thread exit and never shows up as an LSan leak; the
// separate POD alive-flag stays readable after destruction, turning any
// lock traffic from later-running thread_local destructors into plain
// uninstrumented locking instead of use-after-destruction.
struct ThreadSyncState;
thread_local bool t_tls_alive = false;

struct ThreadSyncState {
  std::vector<HeldEntry> held;
  int bypass = 0;
  ThreadSyncState() { t_tls_alive = true; }
  ~ThreadSyncState() { t_tls_alive = false; }
};

ThreadSyncState* Tls() {
  thread_local ThreadSyncState state;
  return t_tls_alive ? &state : nullptr;
}

struct Edge {
  uint32_t from = 0;
  uint32_t to = 0;
  std::string context;  // acquisition path that created the edge
};

constexpr size_t kEdgeTableSize = 8192;  // power of two

struct Detector {
  std::mutex mu;
  uint32_t next_id = 1;
  std::vector<LockNode*> nodes;                   // never freed; ids stable
  std::unordered_map<uint64_t, Edge> edges;       // key = from<<32 | to
  std::unordered_map<uint32_t, std::vector<uint32_t>> adj;
  std::vector<std::string> findings;
  std::atomic<int64_t> cycles{0};
  std::atomic<size_t> edge_count{0};
  size_t published = 0;  // entries in table
  // Lock-free membership filter for already-analysed edges. 0 = empty.
  std::atomic<uint64_t> table[kEdgeTableSize];
};

Detector& Det() {
  static Detector* d = new Detector();
  return *d;
}

uint64_t EdgeKey(uint32_t from, uint32_t to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

size_t EdgeSlot(uint64_t key) {
  // Fibonacci hash; table size is a power of two.
  return static_cast<size_t>((key * 0x9e3779b97f4a7c15ull) >> 32) &
         (kEdgeTableSize - 1);
}

bool EdgePublished(Detector& d, uint64_t key) {
  for (size_t i = EdgeSlot(key);; i = (i + 1) & (kEdgeTableSize - 1)) {
    uint64_t v = d.table[i].load(std::memory_order_acquire);
    if (v == key) return true;
    if (v == 0) return false;
  }
}

void PublishEdge(Detector& d, uint64_t key) {
  // Called with d.mu held (single writer). Keep the probe chains short:
  // once the filter is 3/4 full stop publishing — lookups miss and fall
  // through to the map under d.mu, slower but still correct.
  if (d.published >= kEdgeTableSize - kEdgeTableSize / 4) return;
  for (size_t i = EdgeSlot(key);; i = (i + 1) & (kEdgeTableSize - 1)) {
    uint64_t v = d.table[i].load(std::memory_order_relaxed);
    if (v == key) return;
    if (v == 0) {
      d.table[i].store(key, std::memory_order_release);
      ++d.published;
      return;
    }
  }
}

std::atomic<int> g_mode{-1};  // -1 = not yet resolved

DeadlockMode ResolveMode() {
#if defined(LCREC_DEADLOCK_DEFAULT_FATAL)
  DeadlockMode mode = DeadlockMode::kFatal;
#else
  DeadlockMode mode = DeadlockMode::kReport;
#endif
  if (const char* env = std::getenv("LCREC_DEADLOCK")) {
    if (std::strcmp(env, "off") == 0) mode = DeadlockMode::kOff;
    if (std::strcmp(env, "report") == 0) mode = DeadlockMode::kReport;
    if (std::strcmp(env, "fatal") == 0) mode = DeadlockMode::kFatal;
  }
  return mode;
}

DeadlockMode CurrentMode() {
  int m = g_mode.load(std::memory_order_acquire);
  if (m < 0) {
    m = static_cast<int>(ResolveMode());
    int expected = -1;
    if (!g_mode.compare_exchange_strong(expected, m,
                                        std::memory_order_acq_rel)) {
      m = expected;
    }
  }
  return static_cast<DeadlockMode>(m);
}

int64_t LongHoldThresholdUs() {
  static std::atomic<int64_t> cached{-1};
  int64_t v = cached.load(std::memory_order_acquire);
  if (v < 0) {
    v = 50000;  // 50ms default
    if (const char* env = std::getenv("LCREC_MUTEX_LONGHOLD_MS")) {
      char* end = nullptr;
      double ms = std::strtod(env, &end);
      if (end != env && ms > 0) v = static_cast<int64_t>(ms * 1000.0);
    }
    cached.store(v, std::memory_order_release);
  }
  return v;
}

// Global lcrec.obs.mutex.* metrics. Construction calls GetCounter,
// which locks the (named) registry mutex — so init is only attempted
// when the calling thread holds no obs::Mutex at all (otherwise the
// registry mutex's own instrumentation would raw-relock a mutex the
// thread already holds). Until init happens, per-node atomics still
// record everything; only the global rollup is briefly absent.
struct SyncMetrics {
  Counter& acquisitions;
  Counter& contended;
  Counter& long_holds;
  Counter& cycles;
  Gauge& edges;
  Histogram& wait_us;
  Histogram& hold_us;
};

std::atomic<SyncMetrics*> g_sync_metrics{nullptr};

SyncMetrics* SyncMetricsIfReady() {
  return g_sync_metrics.load(std::memory_order_acquire);
}

SyncMetrics* SyncMetricsMaybeInit(ThreadSyncState* t) {
  SyncMetrics* m = g_sync_metrics.load(std::memory_order_acquire);
  if (m != nullptr) return m;
  if (!t->held.empty()) return nullptr;  // registry mutex could be held
  ++t->bypass;
  MetricsRegistry& r = MetricsRegistry::Global();
  m = new SyncMetrics{
      r.GetCounter("lcrec.obs.mutex.acquisitions"),
      r.GetCounter("lcrec.obs.mutex.contended"),
      r.GetCounter("lcrec.obs.mutex.long_holds"),
      r.GetCounter("lcrec.obs.mutex.cycles"),
      r.GetGauge("lcrec.obs.mutex.edges"),
      r.GetHistogram("lcrec.obs.mutex.wait_us",
                     Histogram::ExponentialBounds(1.0, 2.0, 24)),
      r.GetHistogram("lcrec.obs.mutex.hold_us",
                     Histogram::ExponentialBounds(1.0, 2.0, 24)),
  };
  --t->bypass;
  SyncMetrics* expected = nullptr;
  if (!g_sync_metrics.compare_exchange_strong(expected, m,
                                              std::memory_order_acq_rel)) {
    delete m;  // lost the race; the metric refs are shared registry state
    m = expected;
  }
  return m;
}

std::string NodeLabel(const LockNode* node) {
  if (node->name != nullptr) return std::string("\"") + node->name + "\"";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "mutex@%p", node->addr);
  return buf;
}

std::string SpanStackString() {
  const std::vector<const char*>& frames = CurrentThreadSpanFrames();
  if (frames.empty()) return "(no live spans)";
  std::string out;
  for (const char* f : frames) {
    if (!out.empty()) out += " > ";
    out += f;
  }
  return out;
}

// "thread 3 acquiring "serve.queue" while holding ["serve.state"];
//  spans: serve.recommend > llm.decode"
std::string DescribeAcquisition(const ThreadSyncState* t,
                                const LockNode* acquiring) {
  std::string out = "thread " + std::to_string(CurrentThreadId()) +
                    " acquiring " + NodeLabel(acquiring) + " while holding [";
  for (size_t i = 0; i < t->held.size(); ++i) {
    if (i > 0) out += ", ";
    out += NodeLabel(t->held[i].node);
  }
  out += "]; spans: " + SpanStackString();
  return out;
}

// DFS for a path from `from` to `goal` in the edge graph. Returns the
// node-id path (inclusive of both ends) or empty. Caller holds d.mu.
std::vector<uint32_t> FindPath(Detector& d, uint32_t from, uint32_t goal) {
  std::vector<uint32_t> path{from};
  std::vector<std::pair<uint32_t, size_t>> stack{{from, 0}};
  std::vector<uint32_t> visited{from};
  while (!stack.empty()) {
    auto& [id, next] = stack.back();
    if (id == goal) {
      path.clear();
      for (const auto& frame : stack) path.push_back(frame.first);
      return path;
    }
    auto it = d.adj.find(id);
    if (it == d.adj.end() || next >= it->second.size()) {
      stack.pop_back();
      continue;
    }
    uint32_t child = it->second[next++];
    if (std::find(visited.begin(), visited.end(), child) != visited.end()) {
      continue;
    }
    visited.push_back(child);
    stack.push_back({child, 0});
  }
  return {};
}

const LockNode* NodeById(Detector& d, uint32_t id) {
  for (const LockNode* n : d.nodes) {
    if (n->id == id) return n;
  }
  return nullptr;
}

// Renders the full cycle report: the acquisition that closed the cycle,
// then every edge along the recorded path back, each with the context
// captured when that edge was first seen. Caller holds d.mu.
std::string CycleReport(Detector& d, const ThreadSyncState* t,
                        const LockNode* held, const LockNode* acquiring,
                        const std::vector<uint32_t>& path) {
  std::string msg = "lock-order cycle: acquiring " + NodeLabel(acquiring) +
                    " while holding " + NodeLabel(held) +
                    " closes a cycle in the lock-order graph (potential "
                    "deadlock)\n";
  msg += "  this acquisition: " + DescribeAcquisition(t, acquiring) + "\n";
  // path runs acquiring -> ... -> held; each step is a recorded edge.
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = d.edges.find(EdgeKey(path[i], path[i + 1]));
    const LockNode* a = NodeById(d, path[i]);
    const LockNode* b = NodeById(d, path[i + 1]);
    msg += "  conflicting edge " + (a ? NodeLabel(a) : std::string("?")) +
           " -> " + (b ? NodeLabel(b) : std::string("?")) + " first seen: " +
           (it != d.edges.end() ? it->second.context : "(context lost)") +
           "\n";
  }
  return msg;
}

[[noreturn]] void FatalReport(ThreadSyncState* t, const char* kind,
                              const std::string& report) {
  // Permanent bypass: the abort path (flight-recorder dump, logging)
  // takes obs mutexes; re-entering the detector mid-abort would recurse.
  ++t->bypass;
  core::check_internal::CheckFailed("src/obs/sync.cc", 0, "LCREC_DEADLOCK",
                                    kind, report);
}

void RecordFinding(ThreadSyncState* t, const std::string& report) {
  ++t->bypass;
  Log(LogLevel::kError, "%s", report.c_str());
  FlightRecorder::Global().Record(FrKind::kLockOrder, "lock-order cycle", 0,
                                  0);
  if (SyncMetrics* m = SyncMetricsIfReady()) m->cycles.Increment();
  --t->bypass;
}

// A new (held, acquiring) ordering. Fast path: one acquire-load probe of
// the published-edge filter. Slow path (first sighting only): record the
// edge with its acquisition context and check whether it closes a cycle.
void NoteEdge(ThreadSyncState* t, LockNode* held, LockNode* acquiring,
              DeadlockMode mode) {
  uint64_t key = EdgeKey(held->id, acquiring->id);
  Detector& d = Det();
  if (EdgePublished(d, key)) return;
  std::string report;
  {
    std::lock_guard<std::mutex> g(d.mu);
    if (d.edges.count(key) != 0) {
      PublishEdge(d, key);
      return;
    }
    std::vector<uint32_t> path = FindPath(d, acquiring->id, held->id);
    Edge e;
    e.from = held->id;
    e.to = acquiring->id;
    e.context = DescribeAcquisition(t, acquiring);
    d.edges.emplace(key, std::move(e));
    d.adj[held->id].push_back(acquiring->id);
    d.edge_count.store(d.edges.size(), std::memory_order_relaxed);
    PublishEdge(d, key);
    if (!path.empty()) {
      report = CycleReport(d, t, held, acquiring, path);
      d.cycles.fetch_add(1, std::memory_order_relaxed);
      d.findings.push_back(report);
    }
  }
  if (SyncMetrics* m = SyncMetricsIfReady()) {
    ++t->bypass;
    m->edges.Set(
        static_cast<double>(d.edge_count.load(std::memory_order_relaxed)));
    --t->bypass;
  }
  if (!report.empty()) {
    if (mode == DeadlockMode::kFatal) {
      FatalReport(t, "lock-order cycle", report);
    }
    RecordFinding(t, report);
  }
}

}  // namespace

void BypassCurrentThread() {
  if (ThreadSyncState* t = Tls()) ++t->bypass;
}

}  // namespace sync_internal

using sync_internal::LockNode;
using sync_internal::Tls;

Mutex::Mutex() : Mutex(nullptr, kNoRank) {}

Mutex::Mutex(const char* name, int rank) {
  auto& d = sync_internal::Det();
  auto* node = new LockNode();
  node->name = name;
  node->rank = rank;
  node->addr = this;
  std::lock_guard<std::mutex> g(d.mu);
  node->id = d.next_id++;
  d.nodes.push_back(node);
  node_ = node;
}

Mutex::~Mutex() {
  // The node outlives the mutex: recorded edges and aggregate stats keep
  // referring to it by id, and ids are never reused, so a new Mutex at
  // the same address can never inherit stale edges.
  node_->alive = false;
}

void Mutex::lock() {
  DeadlockMode mode = sync_internal::CurrentMode();
  sync_internal::ThreadSyncState* t = Tls();
  if (mode == DeadlockMode::kOff || t == nullptr || t->bypass > 0) {
    mu_.lock();
    return;
  }
  LockNode* node = node_;
  bool timed = node->name != nullptr;
  sync_internal::SyncMetrics* gm =
      timed ? sync_internal::SyncMetricsMaybeInit(t) : nullptr;
  // Re-locking a mutex this thread already holds is a guaranteed
  // self-deadlock (std::mutex is non-recursive): abort before the hang,
  // in every mode.
  for (const sync_internal::HeldEntry& h : t->held) {
    if (h.mu == this) {
      sync_internal::FatalReport(
          t, "self-deadlock",
          "re-locking " + sync_internal::NodeLabel(node) +
              " already held by this thread: " +
              sync_internal::DescribeAcquisition(t, node));
    }
  }
  // Rank discipline: every held ranked mutex must rank strictly below
  // the one being acquired. An inversion is a declared-hierarchy
  // violation — a certain bug — so it aborts even in report mode.
  if (node->rank >= 0) {
    for (const sync_internal::HeldEntry& h : t->held) {
      if (h.node->rank >= 0 && h.node->rank >= node->rank) {
        sync_internal::FatalReport(
            t, "rank inversion",
            "mutex rank inversion: acquiring " +
                sync_internal::NodeLabel(node) + " (rank " +
                std::to_string(node->rank) + ") while holding " +
                sync_internal::NodeLabel(h.node) + " (rank " +
                std::to_string(h.node->rank) + ")\n  " +
                sync_internal::DescribeAcquisition(t, node) + "\n");
      }
    }
  }
  for (const sync_internal::HeldEntry& h : t->held) {
    sync_internal::NoteEdge(t, h.node, node, mode);
  }
  bool contended = false;
  int64_t wait_us = 0;
  if (!mu_.try_lock()) {
    contended = true;
    double t0 = NowMicros();
    mu_.lock();
    wait_us = static_cast<int64_t>(NowMicros() - t0);
  }
  sync_internal::HeldEntry entry;
  entry.mu = this;
  entry.node = node;
  entry.acquired_us = timed ? NowMicros() : 0.0;
  t->held.push_back(entry);
  if (timed) {
    node->acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (contended) {
      node->contended.fetch_add(1, std::memory_order_relaxed);
      node->wait_total_us.fetch_add(wait_us, std::memory_order_relaxed);
      int64_t prev = node->wait_max_us.load(std::memory_order_relaxed);
      while (wait_us > prev && !node->wait_max_us.compare_exchange_weak(
                                   prev, wait_us, std::memory_order_relaxed)) {
      }
    }
    if (gm != nullptr) {
      ++t->bypass;
      gm->acquisitions.Increment();
      if (contended) {
        gm->contended.Increment();
        gm->wait_us.Observe(static_cast<double>(wait_us));
      }
      --t->bypass;
    }
  }
}

void Mutex::unlock() {
  sync_internal::ThreadSyncState* t = Tls();
  if (t == nullptr || t->bypass > 0) {
    mu_.unlock();
    return;
  }
  // Find our entry (scan from the top: lock scopes mostly nest LIFO, but
  // UniqueLock allows out-of-order release). Missing entry is fine — the
  // lock was taken with detection off or under bypass.
  int64_t hold_us = -1;
  LockNode* node = nullptr;
  for (size_t i = t->held.size(); i > 0; --i) {
    sync_internal::HeldEntry& h = t->held[i - 1];
    if (h.mu == this) {
      node = h.node;
      if (h.acquired_us > 0.0) {
        hold_us = static_cast<int64_t>(NowMicros() - h.acquired_us);
      }
      t->held.erase(t->held.begin() + static_cast<long>(i - 1));
      break;
    }
  }
  mu_.unlock();
  if (node == nullptr || hold_us < 0) return;
  node->hold_total_us.fetch_add(hold_us, std::memory_order_relaxed);
  int64_t prev = node->hold_max_us.load(std::memory_order_relaxed);
  while (hold_us > prev && !node->hold_max_us.compare_exchange_weak(
                               prev, hold_us, std::memory_order_relaxed)) {
  }
  bool long_hold = hold_us >= sync_internal::LongHoldThresholdUs();
  if (long_hold) node->long_holds.fetch_add(1, std::memory_order_relaxed);
  ++t->bypass;
  if (sync_internal::SyncMetrics* gm = sync_internal::SyncMetricsIfReady()) {
    gm->hold_us.Observe(static_cast<double>(hold_us));
    if (long_hold) gm->long_holds.Increment();
  }
  if (long_hold) {
    // node->name has process lifetime (ctor contract), safe to store.
    FlightRecorder::Global().Record(FrKind::kLongHold, node->name, hold_us,
                                    node->rank);
  }
  --t->bypass;
}

DeadlockMode GetDeadlockMode() { return sync_internal::CurrentMode(); }

void SetDeadlockMode(DeadlockMode mode) {
  sync_internal::g_mode.store(static_cast<int>(mode),
                              std::memory_order_release);
}

const char* DeadlockModeName(DeadlockMode mode) {
  switch (mode) {
    case DeadlockMode::kOff:
      return "off";
    case DeadlockMode::kReport:
      return "report";
    case DeadlockMode::kFatal:
      return "fatal";
  }
  return "?";
}

std::vector<MutexStatsRow> MutexStatsSnapshot() {
  auto& d = sync_internal::Det();
  std::vector<MutexStatsRow> rows;
  {
    std::lock_guard<std::mutex> g(d.mu);
    for (const LockNode* n : d.nodes) {
      if (n->name == nullptr) continue;
      MutexStatsRow* row = nullptr;
      for (MutexStatsRow& r : rows) {
        if (r.name == n->name) {
          row = &r;
          break;
        }
      }
      if (row == nullptr) {
        rows.emplace_back();
        row = &rows.back();
        row->name = n->name;
        row->rank = n->rank;
      }
      ++row->instances;
      row->acquisitions += n->acquisitions.load(std::memory_order_relaxed);
      row->contended += n->contended.load(std::memory_order_relaxed);
      row->long_holds += n->long_holds.load(std::memory_order_relaxed);
      row->wait_total_us += n->wait_total_us.load(std::memory_order_relaxed);
      row->wait_max_us = std::max(
          row->wait_max_us, n->wait_max_us.load(std::memory_order_relaxed));
      row->hold_total_us += n->hold_total_us.load(std::memory_order_relaxed);
      row->hold_max_us = std::max(
          row->hold_max_us, n->hold_max_us.load(std::memory_order_relaxed));
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const MutexStatsRow& a, const MutexStatsRow& b) {
              if (a.rank != b.rank) {
                // Ranked first, ascending; unranked (-1) last.
                if (a.rank < 0) return false;
                if (b.rank < 0) return true;
                return a.rank < b.rank;
              }
              return a.name < b.name;
            });
  return rows;
}

size_t LockOrderEdgeCount() {
  return sync_internal::Det().edge_count.load(std::memory_order_relaxed);
}

int64_t LockOrderCycleCount() {
  return sync_internal::Det().cycles.load(std::memory_order_relaxed);
}

std::vector<std::string> LockOrderFindings() {
  auto& d = sync_internal::Det();
  std::lock_guard<std::mutex> g(d.mu);
  return d.findings;
}

void ResetDeadlockStateForTest() {
  auto& d = sync_internal::Det();
  std::lock_guard<std::mutex> g(d.mu);
  d.edges.clear();
  d.adj.clear();
  d.findings.clear();
  d.cycles.store(0, std::memory_order_relaxed);
  d.edge_count.store(0, std::memory_order_relaxed);
  d.published = 0;
  for (auto& slot : d.table) slot.store(0, std::memory_order_relaxed);
  for (LockNode* n : d.nodes) {
    n->acquisitions.store(0, std::memory_order_relaxed);
    n->contended.store(0, std::memory_order_relaxed);
    n->long_holds.store(0, std::memory_order_relaxed);
    n->wait_total_us.store(0, std::memory_order_relaxed);
    n->wait_max_us.store(0, std::memory_order_relaxed);
    n->hold_total_us.store(0, std::memory_order_relaxed);
    n->hold_max_us.store(0, std::memory_order_relaxed);
  }
}

std::string MutexzText() {
  auto& d = sync_internal::Det();
  std::vector<MutexStatsRow> rows = MutexStatsSnapshot();
  std::string out = "deadlock detector: mode ";
  out += DeadlockModeName(GetDeadlockMode());
  out += " | lock-order edges " + std::to_string(LockOrderEdgeCount());
  out += " | cycles " + std::to_string(LockOrderCycleCount());
  out += " | long-hold threshold " +
         std::to_string(sync_internal::LongHoldThresholdUs() / 1000) + "ms\n\n";
  out +=
      "rank  name                        inst        acq  contended  "
      "wait_us(tot/max)  hold_us(tot/max)  long_holds\n";
  char line[256];
  for (const MutexStatsRow& r : rows) {
    char rank[16];
    if (r.rank >= 0) {
      std::snprintf(rank, sizeof(rank), "%4d", r.rank);
    } else {
      std::snprintf(rank, sizeof(rank), "   -");
    }
    std::snprintf(line, sizeof(line),
                  "%s  %-26s  %4d  %9lld  %9lld  %8lld/%-7lld  %8lld/%-7lld  "
                  "%10lld\n",
                  rank, r.name.c_str(), r.instances,
                  static_cast<long long>(r.acquisitions),
                  static_cast<long long>(r.contended),
                  static_cast<long long>(r.wait_total_us),
                  static_cast<long long>(r.wait_max_us),
                  static_cast<long long>(r.hold_total_us),
                  static_cast<long long>(r.hold_max_us),
                  static_cast<long long>(r.long_holds));
    out += line;
  }
  out += "\nlock-order edges (held -> acquired):\n";
  {
    std::lock_guard<std::mutex> g(d.mu);
    if (d.edges.empty()) out += "  (none)\n";
    std::vector<std::string> edge_lines;
    for (const auto& kv : d.edges) {
      const LockNode* a = sync_internal::NodeById(d, kv.second.from);
      const LockNode* b = sync_internal::NodeById(d, kv.second.to);
      edge_lines.push_back(
          "  " + (a ? sync_internal::NodeLabel(a) : std::string("?")) + " -> " +
          (b ? sync_internal::NodeLabel(b) : std::string("?")) + "\n");
    }
    std::sort(edge_lines.begin(), edge_lines.end());
    edge_lines.erase(std::unique(edge_lines.begin(), edge_lines.end()),
                     edge_lines.end());
    for (const std::string& l : edge_lines) out += l;
    out += "\nfindings:\n";
    if (d.findings.empty()) out += "  (none)\n";
    for (const std::string& f : d.findings) out += f;
  }
  return out;
}

}  // namespace lcrec::obs

#ifndef LCREC_OBS_FLOPS_H_
#define LCREC_OBS_FLOPS_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"

namespace lcrec::obs {

/// FLOPs and bytes-moved attributed to one span name (obs/prof.h shows
/// these as achieved GFLOP/s and GB/s per profile row).
struct SpanCost {
  int64_t flops = 0;
  int64_t bytes = 0;
};

/// Cached FLOP/byte counters for one kernel. Construct once per call
/// site (function-local static) and Add() the nominal arithmetic cost of
/// each call — counts are model costs (2mnk for a matmul regardless of
/// skipped zeros), so ratios against hardware peak are well-defined:
///
///   static obs::KernelFlops kf("core.matmul");
///   kf.Add(2 * m * k * n, 4 * (m * k + k * n + m * n));
///
/// Registry names: lcrec.flops.<kernel> / lcrec.bytes.<kernel>, plus the
/// process-wide lcrec.flops.total / lcrec.bytes.total. Cost when
/// profiling is off: four relaxed atomic adds per kernel call.
class KernelFlops {
 public:
  explicit KernelFlops(const char* kernel);

  void Add(int64_t flops, int64_t bytes);

 private:
  Counter& flops_;
  Counter& bytes_;
};

/// Process totals (lcrec.flops.total / lcrec.bytes.total).
int64_t TotalFlops();
int64_t TotalBytes();

/// Copy of the per-span attribution table. Populated only while span
/// stacks are enabled (profiling): each KernelFlops::Add charges the
/// calling thread's innermost live span.
std::map<std::string, SpanCost> SpanCostSnapshot();
void ResetSpanCosts();

}  // namespace lcrec::obs

#endif  // LCREC_OBS_FLOPS_H_

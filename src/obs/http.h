#ifndef LCREC_OBS_HTTP_H_
#define LCREC_OBS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/sync.h"

namespace lcrec::obs {

/// One parsed HTTP request. Only the subset the debugz surface needs:
/// method, path, and decoded query parameters. Bodies are ignored (the
/// server answers GET/HEAD only).
struct HttpRequest {
  std::string method;  // "GET", "HEAD", ...
  std::string target;  // raw request-target ("/profilez?seconds=2")
  std::string path;    // target up to '?' ("/profilez")
  std::map<std::string, std::string> params;  // decoded query key/values

  /// Query parameter by name, or `fallback` when absent.
  std::string Param(const std::string& name,
                    const std::string& fallback = "") const;
  /// Numeric query parameter, clamped to [lo, hi]; `fallback` when
  /// absent or unparseable.
  double NumParam(const std::string& name, double fallback, double lo,
                  double hi) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Handlers run on the server's event-loop thread, so they must be
/// callable from a foreign thread and should normally return quickly; a
/// deliberately slow handler (/profilez) serializes the debug surface
/// for its duration, which is acceptable for an introspection port.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  /// Numeric address to bind. Loopback by default: the debug surface
  /// exposes internals and has no auth, so it must opt in explicitly
  /// (e.g. "0.0.0.0") to be reachable off-host.
  std::string bind_host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read it back
  /// from port() after Start).
  int port = 0;
  /// Concurrent connections served; later accepts are answered 503 and
  /// closed without reading, so a misbehaving scraper cannot pile up
  /// file descriptors.
  int max_connections = 16;
  /// Request header ceiling; longer requests are answered 431 and
  /// closed.
  size_t max_request_bytes = 8192;
  /// Connections idle longer than this (request never completed) are
  /// dropped.
  double idle_timeout_s = 10.0;
};

/// Minimal dependency-free HTTP/1.1 server: one background thread, raw
/// sockets, a poll() event loop, bounded everything. Every lcrec binary
/// embeds one (via obs::DebugServer) for live introspection, and it is
/// the only place in the repo allowed to touch the socket API (enforced
/// by the lcrec_lint raw-socket rule) — the future RPC front-end builds
/// on this event loop rather than growing a second one.
///
/// Responses are built in memory and written with connection: close.
/// That is the right trade for an introspection port: no keep-alive
/// state machine, no chunked encoding, no content negotiation.
class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path`. Safe before or after
  /// Start; re-registering a path replaces the handler.
  void Handle(const std::string& path, HttpHandler handler);

  /// Binds, listens, and launches the event-loop thread. Returns false
  /// (with the reason in *error when given) on bind/listen failure.
  /// No-op when already running.
  bool Start(std::string* error = nullptr);

  /// Start with fresh options (port/bind chosen at start time rather
  /// than construction). Registered handlers are kept. No-op (returns
  /// true, options untouched) when already running.
  bool StartOn(HttpServerOptions options, std::string* error = nullptr);

  /// Closes the listening socket, drains the event loop, and joins the
  /// thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound port (the kernel's pick when options.port was 0); -1 before
  /// Start.
  int port() const { return port_.load(std::memory_order_acquire); }

  /// Paths with a registered handler, sorted (for index pages).
  std::vector<std::string> HandlerPaths() const;

 private:
  struct Conn {
    int fd = -1;
    std::string in;       // bytes read so far (request head)
    std::string out;      // rendered response bytes
    size_t sent = 0;      // bytes of `out` written
    bool responding = false;  // request parsed, response queued
    double open_us = 0.0;     // NowMicros at accept
  };

  void Loop();
  void AcceptOne();
  /// Reads from `conn`; on a complete request head, dispatches and
  /// queues the response. Returns false when the connection should
  /// close now.
  bool ReadAndMaybeDispatch(Conn* conn);
  /// Flushes queued bytes. Returns false when done or broken (close).
  bool WriteSome(Conn* conn);
  HttpResponse Dispatch(const HttpRequest& request);

  HttpServerOptions options_;
  std::vector<Conn> conns_scratch_;  // event-loop thread only
  std::atomic<bool> running_{false};
  std::atomic<int> port_{-1};
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Stop() wakes poll()
  std::thread thread_;

  mutable Mutex mu_{"obs.http.handlers", 95};
  std::map<std::string, HttpHandler> handlers_ LCREC_GUARDED_BY(mu_);
};

/// Blocking HTTP GET against a local server — the repo's raw-socket test
/// client (tests, CI probes, and bench scrapers use this instead of
/// libcurl). Fills `response` with the parsed status line, Content-Type,
/// and body; returns false (reason in *error when given) on connect/
/// timeout/parse failure. `host` must be a numeric IPv4 address.
bool HttpGet(const std::string& host, int port, const std::string& target,
             HttpResponse* response, std::string* error = nullptr,
             double timeout_s = 30.0);

/// Sends `raw` verbatim and returns everything the server wrote until it
/// closed, unparsed. For protocol-edge tests (malformed request lines,
/// non-GET methods, oversized heads) that HttpGet cannot produce — kept
/// here so tests never need the socket API themselves.
bool HttpRawExchange(const std::string& host, int port, const std::string& raw,
                     std::string* response_text, std::string* error = nullptr,
                     double timeout_s = 30.0);

}  // namespace lcrec::obs

#endif  // LCREC_OBS_HTTP_H_

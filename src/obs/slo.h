#ifndef LCREC_OBS_SLO_H_
#define LCREC_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/sync.h"

namespace lcrec::obs {

/// SLO configuration: a latency target plus the fraction of requests
/// allowed to miss it (the error budget). A request is "bad" when it was
/// shed/errored or completed slower than `target_ms`; the monitor tracks
/// the bad fraction over a sliding window and reports it as a burn rate
/// — bad_fraction / error_budget, the Google SRE convention where 1.0
/// means exactly consuming budget and anything above is overspend.
struct SloOptions {
  double target_ms = 100.0;     // latency objective (the "p95 target")
  double error_budget = 0.05;   // allowed bad-request fraction
  double window_s = 60.0;       // sliding-window horizon
  int sub_windows = 12;         // rotation granularity within the window
  /// Reporter-thread period; 0 disables the thread (Statusz*() still
  /// works on demand).
  double report_every_s = 0.0;
  /// Clock override for tests (microseconds, NowMicros time base).
  std::function<double()> now_us;
};

/// Point-in-time sliding-window reading.
struct SloWindow {
  int64_t total = 0;
  int64_t bad = 0;           // shed/errored or over-target requests
  double bad_fraction = 0.0;
  double burn_rate = 0.0;    // bad_fraction / error_budget
  double budget_left = 1.0;  // 1 - burn_rate (can go negative)
};

/// Sliding-window burn-rate monitor over a request stream. Thread-safe;
/// RecordRequest takes one short mutex-protected bucket update, so it
/// belongs on completion paths, not per-token paths. Readings surface as
/// `lcrec.serve.slo.*` gauges/counters on every record, and the optional
/// reporter thread logs a plain-text statusz line (and bumps
/// lcrec.serve.slo.reports) every `report_every_s`.
class SloMonitor {
 public:
  explicit SloMonitor(const SloOptions& options);
  ~SloMonitor();

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// `ok` is false for sheds/errors; an ok request is still bad when
  /// `latency_ms` exceeds the target.
  void RecordRequest(double latency_ms, bool ok);

  SloWindow Window() const;

  /// "slo: target 100ms budget 5% window 60s | total 812 bad 3
  ///  bad_frac 0.0037 burn 0.074 budget_left 0.926"
  std::string StatuszText() const;

  /// Same reading as one JSON object.
  std::string StatuszJson() const;

  /// Starts the periodic reporter (no-op when report_every_s <= 0 or
  /// already running). `sink` receives each statusz line; defaults to
  /// obs::Log at info level.
  void StartReporter(std::function<void(const std::string&)> sink = nullptr);
  void StopReporter();

  const SloOptions& options() const { return options_; }

 private:
  struct Bucket {
    int64_t epoch = -1;  // bucket index since process start; -1 = empty
    int64_t total = 0;
    int64_t bad = 0;
  };

  double Now() const;
  int64_t EpochOf(double now_us) const;
  SloWindow WindowLocked(double now_us) const LCREC_REQUIRES(mu_);
  void PublishMetrics(const SloWindow& w);

  SloOptions options_;
  double bucket_width_us_ = 0.0;

  mutable Mutex mu_{"obs.slo.window", 31};
  std::vector<Bucket> buckets_ LCREC_GUARDED_BY(mu_);

  Mutex reporter_mu_{"obs.slo.reporter", 30};
  CondVar reporter_cv_;
  bool reporter_stop_ LCREC_GUARDED_BY(reporter_mu_) = false;
  std::thread reporter_;
};

}  // namespace lcrec::obs

#endif  // LCREC_OBS_SLO_H_

#ifndef LCREC_OBS_PERFGATE_H_
#define LCREC_OBS_PERFGATE_H_

#include <map>
#include <string>
#include <vector>

#include "obs/manifest.h"

namespace lcrec::obs {

/// One benchmark metric with its per-metric tolerance band: the allowed
/// relative change before the gate fails (0.25 = 25%). Direction comes
/// from the metric name: names ending in "/gflops", "/ops_per_sec", or
/// "/items_per_sec" are higher-is-better; everything else (latencies)
/// is lower-is-better.
struct PerfMetric {
  double value = 0.0;
  double tolerance = 0.25;
};

/// A full benchmark record: run manifest + named metrics. Serialized as
/// BENCH_<git-sha>.json by bench_perfgate; the committed
/// bench/baseline.json uses the same schema.
struct PerfRecord {
  RunManifest manifest;
  std::map<std::string, PerfMetric> metrics;
};

/// Pretty-printed JSON:
///   {
///     "manifest": {...},
///     "metrics": {
///       "matmul128/p50_ms": {"value":1.25,"tolerance":0.4},
///       ...
///     }
///   }
std::string PerfRecordJson(const PerfRecord& record);

/// Parses PerfRecordJson output (tolerant of whitespace). Returns false
/// when the document has no "metrics" object.
bool ParsePerfRecordJson(const std::string& json, PerfRecord* out);

bool WritePerfRecordFile(const std::string& path, const PerfRecord& record);
bool ReadPerfRecordFile(const std::string& path, PerfRecord* out);

/// Verdict for one metric of the baseline/current pair.
struct PerfDiff {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double change = 0.0;     // (current - baseline) / baseline
  double tolerance = 0.0;  // band that applied (from the baseline record)
  bool higher_is_better = false;
  bool regressed = false;
  bool missing = false;  // in baseline but not measured now (also fails)
  bool added = false;    // measured now but not in baseline (informational)
};

struct PerfGateResult {
  std::vector<PerfDiff> diffs;  // baseline order, then added metrics
  bool ok = true;               // no regression and no missing metric
};

/// True for metric names measured as throughput rather than latency.
bool HigherIsBetter(const std::string& metric);

PerfGateResult ComparePerf(const PerfRecord& baseline,
                           const PerfRecord& current);

/// Human-readable per-metric table with a PASS/FAIL verdict line,
/// suitable for CI logs.
std::string FormatPerfDiff(const PerfGateResult& result);

}  // namespace lcrec::obs

#endif  // LCREC_OBS_PERFGATE_H_

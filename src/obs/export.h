#ifndef LCREC_OBS_EXPORT_H_
#define LCREC_OBS_EXPORT_H_

#include <fstream>
#include <string>

namespace lcrec::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& s);

/// Formats a double as a JSON number ("null" for NaN/inf, which JSON
/// cannot represent).
std::string JsonNumber(double v);

/// Value of an environment variable, or "" when unset/empty. All obs
/// sinks treat "" as disabled, so tests and CI stay silent by default.
std::string EnvOr(const char* name, const std::string& fallback = "");

/// Minimal JSON field extraction for the documents this subsystem writes
/// itself (manifests, perfgate records): finds the first `"key":` in
/// `json` and reads its string (unescaping \" \\ \n \r \t) or number
/// value. Returns false when the key is absent or not of that type.
/// Not a general JSON parser — keys must be unique in the document.
bool ExtractJsonString(const std::string& json, const std::string& key,
                       std::string* out);
bool ExtractJsonNumber(const std::string& json, const std::string& key,
                       double* out);

/// Line-oriented JSON sink. With an empty path every call is a no-op,
/// so call sites need no `if (enabled)` guards.
class JsonlWriter {
 public:
  JsonlWriter() = default;
  explicit JsonlWriter(const std::string& path);

  bool enabled() const { return out_.is_open(); }
  /// Writes one pre-rendered JSON object as a line.
  void WriteLine(const std::string& json_object);

 private:
  std::ofstream out_;
};

/// The shared schema every bench binary emits machine-readable results
/// through: one row per (bench, metric) pair,
///   {"bench":"table3","metric":"Games/LC-Rec/ndcg10","value":0.123,
///    "config":{"scale":1.0,...}}.
/// `config` is a pre-rendered JSON object describing the run. The first
/// line of every enabled sink is a run-manifest header row
/// {"manifest":{...}} (obs/manifest.h) attributing the rows to a build.
class ResultEmitter {
 public:
  ResultEmitter() = default;
  /// Empty path => disabled (all Emit calls are no-ops).
  ResultEmitter(const std::string& bench, const std::string& path,
                const std::string& config_json);

  bool enabled() const { return writer_.enabled(); }
  void Emit(const std::string& metric, double value);

 private:
  std::string bench_;
  std::string config_json_;
  JsonlWriter writer_;
};

}  // namespace lcrec::obs

#endif  // LCREC_OBS_EXPORT_H_

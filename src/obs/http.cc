#include "obs/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace lcrec::obs {

namespace {

/// Cached metric handles for the debug HTTP layer (lcrec.debugz.*).
struct HttpMetrics {
  Counter& requests;
  Counter& bad_requests;  // 4xx/5xx responses
  Counter& dropped;       // over max_connections, answered 503 unread
  Histogram& handle_us;   // dispatch time (handler + render)

  static HttpMetrics& Get() {
    static HttpMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new HttpMetrics{
          r.GetCounter("lcrec.debugz.http_requests"),
          r.GetCounter("lcrec.debugz.http_bad_requests"),
          r.GetCounter("lcrec.debugz.http_dropped"),
          r.GetHistogram("lcrec.debugz.handle_us",
                         Histogram::ExponentialBounds(10.0, 2.0, 24)),
      };
    }();
    return *m;
  }
};

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

std::string RenderResponse(const HttpResponse& resp, bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    ReasonPhrase(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += resp.body;
  return out;
}

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      char hex[3] = {s[i + 1], s[i + 2], '\0'};
      out += static_cast<char>(std::strtol(hex, nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Parses the request line out of a complete head. Returns false on a
/// malformed line (caller answers 400).
bool ParseRequestLine(const std::string& head, HttpRequest* req) {
  size_t eol = head.find("\r\n");
  if (eol == std::string::npos) return false;
  std::string line = head.substr(0, eol);
  size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  req->method = line.substr(0, sp1);
  req->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req->method.empty() || req->target.empty() || req->target[0] != '/') {
    return false;
  }
  size_t q = req->target.find('?');
  req->path = req->target.substr(0, q);
  if (q != std::string::npos) {
    std::string query = req->target.substr(q + 1);
    size_t pos = 0;
    while (pos <= query.size()) {
      size_t amp = query.find('&', pos);
      std::string pair = query.substr(
          pos, amp == std::string::npos ? std::string::npos : amp - pos);
      if (!pair.empty()) {
        size_t eq = pair.find('=');
        std::string key = UrlDecode(pair.substr(0, eq));
        std::string val =
            eq == std::string::npos ? "" : UrlDecode(pair.substr(eq + 1));
        if (!key.empty()) req->params[key] = val;
      }
      if (amp == std::string::npos) break;
      pos = amp + 1;
    }
  }
  return true;
}

}  // namespace

std::string HttpRequest::Param(const std::string& name,
                               const std::string& fallback) const {
  auto it = params.find(name);
  return it == params.end() ? fallback : it->second;
}

double HttpRequest::NumParam(const std::string& name, double fallback,
                             double lo, double hi) const {
  auto it = params.find(name);
  double v = fallback;
  if (it != params.end()) {
    char* end = nullptr;
    double parsed = std::strtod(it->second.c_str(), &end);
    if (end != nullptr && end != it->second.c_str()) v = parsed;
  }
  return std::min(std::max(v, lo), hi);
}

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  LCREC_CHECK_GT(options_.max_connections, 0);
  LCREC_CHECK_GT(options_.max_request_bytes, size_t{0});
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, HttpHandler handler) {
  MutexLock lock(mu_);
  handlers_[path] = std::move(handler);
}

std::vector<std::string> HttpServer::HandlerPaths() const {
  MutexLock lock(mu_);
  std::vector<std::string> paths;
  paths.reserve(handlers_.size());
  for (const auto& kv : handlers_) paths.push_back(kv.first);
  return paths;
}

bool HttpServer::StartOn(HttpServerOptions options, std::string* error) {
  if (running()) return true;
  LCREC_CHECK_GT(options.max_connections, 0);
  LCREC_CHECK_GT(options.max_request_bytes, size_t{0});
  options_ = std::move(options);
  return Start(error);
}

bool HttpServer::Start(std::string* error) {
  auto fail = [this, error](const std::string& why) {
    if (error != nullptr) *error = why + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : wake_fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return false;
  };
  if (running()) return true;

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad bind host '" + options_.bind_host + "'";
    }
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, options_.max_connections) != 0) {
    return fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return fail("getsockname");
  }
  if (!SetNonBlocking(listen_fd_)) return fail("fcntl");
  if (::pipe(wake_fds_) != 0) return fail("pipe");
  SetNonBlocking(wake_fds_[0]);

  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the poll loop; it tears down every fd on the way out.
  char byte = 'x';
  ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
  (void)ignored;
  if (thread_.joinable()) thread_.join();
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_.store(-1, std::memory_order_release);
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) {
  HttpMetrics& hm = HttpMetrics::Get();
  hm.requests.Increment();
  double t0 = NowMicros();
  HttpResponse resp;
  if (request.method != "GET" && request.method != "HEAD") {
    resp.status = 405;
    resp.body = "only GET is served here\n";
  } else {
    HttpHandler handler;
    {
      MutexLock lock(mu_);
      auto it = handlers_.find(request.path);
      if (it != handlers_.end()) handler = it->second;
    }
    if (handler == nullptr) {
      resp.status = 404;
      resp.body = "no handler for " + request.path + "\n";
    } else {
      resp = handler(request);
    }
  }
  if (resp.status != 200) hm.bad_requests.Increment();
  hm.handle_us.Observe(NowMicros() - t0);
  return resp;
}

bool HttpServer::ReadAndMaybeDispatch(Conn* conn) {
  char buf[2048];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      if (conn->in.size() > options_.max_request_bytes) {
        HttpResponse resp;
        resp.status = 431;
        resp.body = "request head over " +
                    std::to_string(options_.max_request_bytes) + " bytes\n";
        HttpMetrics::Get().bad_requests.Increment();
        conn->out = RenderResponse(resp, /*head_only=*/false);
        conn->responding = true;
        return true;
      }
      size_t head_end = conn->in.find("\r\n\r\n");
      if (head_end == std::string::npos) continue;
      HttpRequest req;
      HttpResponse resp;
      if (!ParseRequestLine(conn->in, &req)) {
        resp.status = 400;
        resp.body = "malformed request line\n";
        HttpMetrics::Get().bad_requests.Increment();
      } else {
        resp = Dispatch(req);
      }
      conn->out = RenderResponse(resp, req.method == "HEAD");
      conn->responding = true;
      return true;
    }
    if (n == 0) return false;  // peer closed before a full request
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool HttpServer::WriteSome(Conn* conn) {
  while (conn->sent < conn->out.size()) {
    ssize_t n = ::send(conn->fd, conn->out.data() + conn->sent,
                       conn->out.size() - conn->sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn->sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return false;  // fully flushed: close
}

void HttpServer::AcceptOne() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN/EINTR/...: back to poll
    SetNonBlocking(fd);
    Conn conn;
    conn.fd = fd;
    conn.open_us = NowMicros();
    if (conns_scratch_.size() >=
        static_cast<size_t>(options_.max_connections)) {
      // Over capacity: answer 503 without reading the request, so a
      // scraper stampede degrades politely instead of exhausting fds.
      HttpMetrics::Get().dropped.Increment();
      HttpResponse resp;
      resp.status = 503;
      resp.body = "debugz connection limit reached\n";
      conn.out = RenderResponse(resp, /*head_only=*/false);
      conn.responding = true;
    }
    conns_scratch_.push_back(std::move(conn));
  }
}

void HttpServer::Loop() {
  std::vector<pollfd> pfds;
  for (;;) {
    pfds.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const Conn& c : conns_scratch_) {
      pfds.push_back({c.fd, static_cast<short>(c.responding ? POLLOUT
                                                            : POLLIN),
                      0});
    }
    int rc = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/250);
    if (!running_.load(std::memory_order_acquire)) break;
    if (rc < 0 && errno != EINTR) break;

    double now = NowMicros();
    size_t keep = 0;
    for (size_t i = 0; i < conns_scratch_.size(); ++i) {
      Conn& c = conns_scratch_[i];
      const pollfd& p = pfds[i + 2];
      bool alive = true;
      if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          !c.responding) {
        alive = false;
      } else if (c.responding) {
        if ((p.revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
          alive = WriteSome(&c);
        }
      } else if ((p.revents & POLLIN) != 0) {
        alive = ReadAndMaybeDispatch(&c);
      }
      if (alive &&
          now - c.open_us > options_.idle_timeout_s * 1e6) {
        alive = false;
      }
      if (alive) {
        if (keep != i) conns_scratch_[keep] = std::move(c);
        ++keep;
      } else {
        ::close(c.fd);
      }
    }
    conns_scratch_.resize(keep);
    if ((pfds[1].revents & POLLIN) != 0) AcceptOne();
  }
  for (Conn& c : conns_scratch_) ::close(c.fd);
  conns_scratch_.clear();
}

bool HttpRawExchange(const std::string& host, int port, const std::string& raw,
                     std::string* response_text, std::string* error,
                     double timeout_s) {
  auto fail = [error](int fd, const std::string& why) {
    if (fd >= 0) ::close(fd);
    if (error != nullptr) *error = why;
    return false;
  };
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return fail(-1, "bad host '" + host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(fd, "socket failed");
  SetNonBlocking(fd);
  double deadline = NowMicros() + timeout_s * 1e6;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) return fail(fd, "connect failed");
    pollfd p{fd, POLLOUT, 0};
    if (::poll(&p, 1, static_cast<int>(timeout_s * 1000.0)) <= 0) {
      return fail(fd, "connect timeout");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0) return fail(fd, "connect refused");
  }

  const std::string& req = raw;  // bytes sent verbatim
  size_t sent = 0;
  while (sent < req.size()) {
    ssize_t n =
        ::send(fd, req.data() + sent, req.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      int wait_ms = static_cast<int>((deadline - NowMicros()) / 1000.0);
      if (wait_ms <= 0 || ::poll(&p, 1, wait_ms) <= 0) {
        return fail(fd, "send timeout");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return fail(fd, "send failed");
  }

  std::string received;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      received.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;  // server closed: response complete
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd p{fd, POLLIN, 0};
      int wait_ms = static_cast<int>((deadline - NowMicros()) / 1000.0);
      if (wait_ms <= 0 || ::poll(&p, 1, wait_ms) <= 0) {
        return fail(fd, "recv timeout");
      }
      continue;
    }
    if (errno == EINTR) continue;
    return fail(fd, "recv failed");
  }
  ::close(fd);
  *response_text = std::move(received);
  return true;
}

bool HttpGet(const std::string& host, int port, const std::string& target,
             HttpResponse* response, std::string* error, double timeout_s) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  std::string raw;
  if (!HttpRawExchange(host, port, request, &raw, error, timeout_s)) {
    return false;
  }

  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return fail("truncated response");
  size_t line_end = raw.find("\r\n");
  std::string status_line = raw.substr(0, line_end);
  if (status_line.rfind("HTTP/1.", 0) != 0) {
    return fail("bad status line '" + status_line + "'");
  }
  size_t sp = status_line.find(' ');
  if (sp == std::string::npos) return fail("bad status line");
  response->status = std::atoi(status_line.c_str() + sp + 1);
  response->content_type.clear();
  // Scan headers for Content-Type (case-insensitive name match).
  size_t pos = line_end + 2;
  while (pos < head_end) {
    size_t eol = raw.find("\r\n", pos);
    std::string header = raw.substr(pos, eol - pos);
    size_t colon = header.find(':');
    if (colon != std::string::npos) {
      std::string name = header.substr(0, colon);
      std::transform(name.begin(), name.end(), name.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (name == "content-type") {
        size_t v = colon + 1;
        while (v < header.size() && header[v] == ' ') ++v;
        response->content_type = header.substr(v);
      }
    }
    pos = eol + 2;
  }
  response->body = raw.substr(head_end + 4);
  return true;
}

}  // namespace lcrec::obs

#include "obs/flightrec.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "obs/export.h"
#include "obs/sync.h"
#include "obs/trace.h"

namespace lcrec::obs {

const char* FrKindName(FrKind kind) {
  switch (kind) {
    case FrKind::kNone:
      return "none";
    case FrKind::kShed:
      return "shed";
    case FrKind::kSlowRequest:
      return "slow_request";
    case FrKind::kHealthTrip:
      return "health_trip";
    case FrKind::kBatchTick:
      return "batch_tick";
    case FrKind::kCheckFail:
      return "check_fail";
    case FrKind::kLockOrder:
      return "lock_order";
    case FrKind::kLongHold:
      return "long_hold";
    case FrKind::kMark:
      return "mark";
    case FrKind::kDegrade:
      return "degrade";
    case FrKind::kBreaker:
      return "breaker";
    case FrKind::kWatchdog:
      return "watchdog";
  }
  return "unknown";
}

/// One thread's ring. Written only by the owning thread (relaxed field
/// stores, release head store); read by dumpers through the atomics.
/// Kept alive past thread exit by the shared_ptr in the global list so a
/// crash dump still shows what an already-joined worker did.
struct FlightRecorder::Ring {
  std::atomic<uint64_t> head{0};
  std::array<Slot, kRingSlots> slots;
  int tid = 0;
};

namespace {

obs::Mutex& RingListMu() {
  static obs::Mutex* mu = new obs::Mutex("obs.flightrec.rings", 85);
  return *mu;
}

std::vector<std::shared_ptr<FlightRecorder::Ring>>& RingList() {
  // Never destroyed: the LCREC_CHECK failure handler may dump during
  // static destruction of some other translation unit.
  static auto* list = new std::vector<std::shared_ptr<FlightRecorder::Ring>>();
  return *list;
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* global = new FlightRecorder();
  return *global;
}

FlightRecorder::Ring& FlightRecorder::ThisThreadRing() {
  thread_local std::shared_ptr<Ring> ring = [] {
    auto r = std::make_shared<Ring>();
    r->tid = CurrentThreadId();
    MutexLock lock(RingListMu());
    RingList().push_back(r);
    return r;
  }();
  return *ring;
}

void FlightRecorder::Record(FrKind kind, const char* detail, int64_t a,
                            int64_t b) {
  Ring& ring = ThisThreadRing();
  uint64_t h = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[h % kRingSlots];
  slot.ts_us.store(NowMicros(), std::memory_order_relaxed);
  slot.detail.store(detail, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  // Publish the slot: a reader that observes head > h sees the stores
  // above (acquire pairing in Snapshot).
  ring.head.store(h + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<FrEvent> FlightRecorder::Snapshot() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(RingListMu());
    rings = RingList();
  }
  std::vector<FrEvent> out;
  for (const auto& ring : rings) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t count = std::min<uint64_t>(head, kRingSlots);
    for (uint64_t i = head - count; i < head; ++i) {
      const Slot& slot = ring->slots[i % kRingSlots];
      FrEvent e;
      e.ts_us = slot.ts_us.load(std::memory_order_relaxed);
      e.tid = ring->tid;
      e.kind = static_cast<FrKind>(slot.kind.load(std::memory_order_relaxed));
      e.detail = slot.detail.load(std::memory_order_relaxed);
      e.a = slot.a.load(std::memory_order_relaxed);
      e.b = slot.b.load(std::memory_order_relaxed);
      if (e.kind != FrKind::kNone && e.detail != nullptr) {
        out.push_back(e);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FrEvent& x, const FrEvent& y) { return x.ts_us < y.ts_us; });
  return out;
}

void FlightRecorder::WriteJsonl(std::ostream& out) const {
  for (const FrEvent& e : Snapshot()) {
    out << "{\"ts_us\":" << JsonNumber(e.ts_us) << ",\"tid\":" << e.tid
        << ",\"kind\":\"" << FrKindName(e.kind) << "\",\"detail\":\""
        << JsonEscape(e.detail) << "\",\"a\":" << e.a << ",\"b\":" << e.b
        << "}\n";
  }
}

void FlightRecorder::DumpToStderr(const char* why) const {
  // stderr via stdio, not obs::Log: the dump must survive any log-level
  // filter, and each line must stay a standalone JSON object.
  std::ostringstream text;
  WriteJsonl(text);
  std::fprintf(stderr, "=== flight recorder dump (%s) ===\n", why);
  std::fputs(text.str().c_str(), stderr);
  std::fprintf(stderr, "=== end flight recorder dump ===\n");
  std::fflush(stderr);
  std::string path = EnvOr("LCREC_FLIGHTREC_OUT");
  if (!path.empty()) {
    std::ofstream file(path, std::ios::out | std::ios::trunc);
    if (file.is_open()) WriteJsonl(file);
  }
}

}  // namespace lcrec::obs

#ifndef LCREC_OBS_REGISTRY_H_
#define LCREC_OBS_REGISTRY_H_

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/sync.h"

namespace lcrec::obs {

/// Point-in-time reading of one registered metric. Histogram fields are
/// only meaningful when type == "histogram".
struct MetricSample {
  std::string name;
  std::string type;  // "counter" | "gauge" | "histogram"
  double value = 0.0;
  int64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Process-wide metric registry. Metric names follow the convention
/// `lcrec.<subsystem>.<name>` (see DESIGN.md §7). Lookup takes a mutex;
/// hot paths should cache the returned reference once:
///
///   static obs::Counter& c =
///       obs::MetricsRegistry::Global().GetCounter("lcrec.llm.gen.queries");
///   c.Increment();
///
/// Registered metrics live for the whole process (the registry is never
/// destroyed), so cached references cannot dangle.
///
/// When `LCREC_METRICS_OUT` is set, the full registry is flushed to that
/// path as JSONL at process exit. Unset => purely in-memory, no I/O.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` is used only on first creation of `name`.
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds);

  /// Reads every registered metric, counters first, then gauges, then
  /// histograms, each group in name order.
  std::vector<MetricSample> Samples() const;

  /// One JSON object per metric:
  ///   counters   {"name":...,"type":"counter","value":N}
  ///   gauges     {"name":...,"type":"gauge","value":X}
  ///   histograms {"name":...,"type":"histogram","count":N,"sum":S,
  ///               "mean":M,"min":m,"max":M,"p50":...,"p95":...,"p99":...}
  void WriteJsonl(std::ostream& out) const;

  /// Writes WriteJsonl output to `path` (no-op when empty), preceded by
  /// a run-manifest header row {"manifest":{...}} so the dump is
  /// attributable to a build (obs/manifest.h).
  void WriteJsonlFile(const std::string& path) const;

  /// Prometheus text exposition (version 0.0.4): `# TYPE` lines plus
  /// samples for every counter, gauge, and histogram. Histograms emit
  /// cumulative `_bucket{le="..."}` series (one per bound plus +Inf),
  /// `_sum`, and `_count`. Metric names are sanitized to
  /// [a-zA-Z0-9_:] (dots become underscores).
  void DumpPrometheus(std::ostream& out) const;

  /// DumpPrometheus to `path` (no-op when empty).
  void DumpPrometheusFile(const std::string& path) const;

  /// Resets every registered metric to zero (counts, sums, buckets).
  /// References handed out earlier stay valid. Intended for tests and
  /// for bench binaries separating a warmup phase from a measured one.
  void Reset();

  std::vector<std::string> MetricNames() const;

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_{"obs.metrics.registry", 100};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      LCREC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ LCREC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      LCREC_GUARDED_BY(mu_);
};

}  // namespace lcrec::obs

#endif  // LCREC_OBS_REGISTRY_H_

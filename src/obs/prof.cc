#include "obs/prof.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/flops.h"
#include "obs/trace.h"

namespace lcrec::obs {

double ProfileReport::AttributedFraction() const {
  if (samples <= 0) return 0.0;
  return static_cast<double>(samples - unattributed) /
         static_cast<double>(samples);
}

SamplingProfiler& SamplingProfiler::Global() {
  // Never destroyed: the atexit reporter and late-exiting threads may
  // still reference it during static destruction.
  static SamplingProfiler* global = new SamplingProfiler();
  return *global;
}

void SamplingProfiler::Start(double hz) {
  if (hz <= 0.0) return;
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  {
    MutexLock lock(mu_);
    hz_ = hz;
    session_start_us_ = NowMicros();
  }
  thread_ = std::thread([this, hz] { Loop(hz); });
}

void SamplingProfiler::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  if (thread_.joinable()) thread_.join();
  MutexLock lock(mu_);
  duration_us_ += NowMicros() - session_start_us_;
}

void SamplingProfiler::Reset() {
  MutexLock lock(mu_);
  samples_ = 0;
  unattributed_ = 0;
  duration_us_ = 0.0;
  session_start_us_ = NowMicros();
  name_counts_.clear();
  collapsed_.clear();
}

void SamplingProfiler::Loop(double hz) {
  using clock = std::chrono::steady_clock;
  const auto period = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(1.0 / hz));
  auto next = clock::now() + period;
  while (running_.load(std::memory_order_relaxed)) {
    SampleOnce();
    auto now = clock::now();
    if (next < now) next = now;  // fell behind: resync, don't burst
    std::this_thread::sleep_until(next);
    next += period;
  }
}

void SamplingProfiler::SampleOnce() {
  std::vector<LiveStackSample> stacks = SnapshotLiveSpans();
  MutexLock lock(mu_);
  for (const LiveStackSample& s : stacks) {
    ++samples_;
    if (s.frames.empty()) {
      ++unattributed_;
      continue;
    }
    // Self time: innermost frame only.
    ++name_counts_[s.frames.back()].first;
    // Total time: each distinct name on the stack, once (recursion must
    // not double-count a sample).
    std::string key;
    for (size_t i = 0; i < s.frames.size(); ++i) {
      const char* name = s.frames[i];
      bool seen = false;
      for (size_t j = 0; j < i; ++j) {
        if (s.frames[j] == name || std::string(s.frames[j]) == name) {
          seen = true;
          break;
        }
      }
      if (!seen) ++name_counts_[name].second;
      if (i > 0) key += ';';
      key += name;
    }
    ++collapsed_[key];
  }
}

ProfileReport SamplingProfiler::Report() const {
  ProfileReport report;
  std::map<std::string, SpanCost> costs = SpanCostSnapshot();
  MutexLock lock(mu_);
  report.hz = hz_;
  report.duration_s = duration_us_ / 1e6;
  if (running_.load(std::memory_order_relaxed)) {
    report.duration_s += (NowMicros() - session_start_us_) / 1e6;
  }
  report.samples = samples_;
  report.unattributed = unattributed_;
  for (const auto& kv : name_counts_) {
    ProfileEntry e;
    e.name = kv.first;
    e.self_samples = kv.second.first;
    e.total_samples = kv.second.second;
    auto it = costs.find(kv.first);
    if (it != costs.end()) {
      e.flops = it->second.flops;
      e.bytes = it->second.bytes;
    }
    report.entries.push_back(std::move(e));
  }
  std::sort(report.entries.begin(), report.entries.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.self_samples > b.self_samples;
            });
  report.collapsed.assign(collapsed_.begin(), collapsed_.end());
  return report;
}

void SamplingProfiler::WriteFlat(std::ostream& out) const {
  ProfileReport r = Report();
  out << "== lcrec profile: " << r.samples << " samples @ " << r.hz
      << " Hz over " << r.duration_s << " s ("
      << 100.0 * r.AttributedFraction() << "% attributed)\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%8s %8s %7s %10s %10s  %s\n", "self",
                "total", "self%", "GFLOP/s", "GB/s", "span");
  out << line;
  for (const ProfileEntry& e : r.entries) {
    double self_pct =
        r.samples > 0
            ? 100.0 * static_cast<double>(e.self_samples) / r.samples
            : 0.0;
    // Each self sample represents 1/hz seconds of that thread's time.
    double self_s = r.hz > 0.0 ? static_cast<double>(e.self_samples) / r.hz
                               : 0.0;
    double gflops = self_s > 0.0 && e.flops > 0
                        ? static_cast<double>(e.flops) / self_s / 1e9
                        : 0.0;
    double gbps = self_s > 0.0 && e.bytes > 0
                      ? static_cast<double>(e.bytes) / self_s / 1e9
                      : 0.0;
    std::snprintf(line, sizeof(line), "%8lld %8lld %6.1f%% %10.3f %10.3f  %s\n",
                  static_cast<long long>(e.self_samples),
                  static_cast<long long>(e.total_samples), self_pct, gflops,
                  gbps, e.name.c_str());
    out << line;
  }
  if (r.unattributed > 0) {
    std::snprintf(line, sizeof(line), "%8lld %8s %6.1f%% %10s %10s  %s\n",
                  static_cast<long long>(r.unattributed), "-",
                  r.samples > 0
                      ? 100.0 * static_cast<double>(r.unattributed) / r.samples
                      : 0.0,
                  "-", "-", "<unattributed>");
    out << line;
  }
}

void SamplingProfiler::WriteCollapsed(std::ostream& out) const {
  ProfileReport r = Report();
  for (const auto& kv : r.collapsed) {
    out << kv.first << ' ' << kv.second << '\n';
  }
  if (r.unattributed > 0) out << "<unattributed> " << r.unattributed << '\n';
}

void SamplingProfiler::WriteCollapsedFile(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return;
  WriteCollapsed(out);
}

}  // namespace lcrec::obs

#ifndef LCREC_OBS_INJECT_H_
#define LCREC_OBS_INJECT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace lcrec::obs {

/// Shared grammar + randomness for the repo's fault injectors
/// (ckpt::faultfs's LCREC_FAULT and serve::chaos's LCREC_CHAOS). Both
/// specs express probabilistic firing as a rate in (0, 1], parsed and
/// sampled the same way, so an operator learns one grammar and a test
/// that seeds one injector reasons about the other identically. Lives in
/// obs (layer 1) because ckpt (layer 2) cannot include serve (layer 6).

/// Parses a probability in (0, 1] ("0.1", ".5", "1"). False on
/// malformed input, zero, or anything above 1.
bool ParseInjectRate(const std::string& text, double* rate);

/// Deterministic Bernoulli sampler for injection decisions: a splitmix64
/// stream mapped to [0, 1). Thread-safe — the state advance is one
/// atomic fetch_add, so concurrent callers draw distinct, reproducible
/// samples (the multiset of draws depends only on the seed and call
/// count, not on interleaving).
class InjectRng {
 public:
  explicit InjectRng(uint64_t seed) : state_(seed) {}

  /// Reseeds and restarts the stream (injector re-arm).
  void Reset(uint64_t seed) {
    state_.store(seed, std::memory_order_relaxed);
  }

  /// One sample in [0, 1).
  double NextUniform();

  /// True with probability `rate`. Rates <= 0 never fire; >= 1 always.
  bool Fire(double rate) {
    if (rate <= 0.0) return false;
    if (rate >= 1.0) return true;
    return NextUniform() < rate;
  }

 private:
  std::atomic<uint64_t> state_;
};

}  // namespace lcrec::obs

#endif  // LCREC_OBS_INJECT_H_

#include "obs/manifest.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <thread>

#include "obs/export.h"

// Baked in by src/obs/CMakeLists.txt for this file only; the env var
// LCREC_GIT_SHA overrides at runtime (a configure-time sha can go stale
// between reconfigures, so scripts export the live one).
#ifndef LCREC_GIT_SHA
#define LCREC_GIT_SHA "unknown"
#endif
#ifndef LCREC_BUILD_FLAGS
#define LCREC_BUILD_FLAGS "unknown"
#endif

namespace lcrec::obs {

namespace {

std::string IsoUtcNow() {
  std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &now);
#else
  gmtime_r(&now, &tm_utc);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

std::string CpuModelName() {
#if defined(__linux__)
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      size_t start = line.find_first_not_of(" \t", colon + 1);
      if (start != std::string::npos) return line.substr(start);
    }
  }
#endif
  return "unknown";
}

std::string CompilerVersion() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("g++ ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

RunManifest CollectRunManifest() {
  RunManifest m;
  m.timestamp = IsoUtcNow();
  m.git_sha = EnvOr("LCREC_GIT_SHA", LCREC_GIT_SHA);
  m.compiler = CompilerVersion();
  m.flags = LCREC_BUILD_FLAGS;
  m.cpu = CpuModelName();
  m.cores = static_cast<int>(std::thread::hardware_concurrency());
  return m;
}

std::string RunManifestJson(const RunManifest& m) {
  return "{\"timestamp\":\"" + JsonEscape(m.timestamp) + "\",\"git_sha\":\"" +
         JsonEscape(m.git_sha) + "\",\"compiler\":\"" +
         JsonEscape(m.compiler) + "\",\"flags\":\"" + JsonEscape(m.flags) +
         "\",\"cpu\":\"" + JsonEscape(m.cpu) +
         "\",\"cores\":" + std::to_string(m.cores) + "}";
}

bool ParseRunManifestJson(const std::string& json, RunManifest* out) {
  RunManifest m;
  if (!ExtractJsonString(json, "timestamp", &m.timestamp)) return false;
  if (!ExtractJsonString(json, "git_sha", &m.git_sha)) return false;
  if (!ExtractJsonString(json, "compiler", &m.compiler)) return false;
  if (!ExtractJsonString(json, "flags", &m.flags)) return false;
  if (!ExtractJsonString(json, "cpu", &m.cpu)) return false;
  double cores = 0.0;
  if (ExtractJsonNumber(json, "cores", &cores)) {
    m.cores = static_cast<int>(cores);
  }
  *out = m;
  return true;
}

std::string RunManifestHeaderRow() {
  return "{\"manifest\":" + RunManifestJson(CollectRunManifest()) + "}";
}

}  // namespace lcrec::obs

#include "obs/metrics.h"

#include <algorithm>
#include <limits>

#include "core/check.h"

namespace lcrec::obs {

namespace {

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  LCREC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::Observe(double v) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, v);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

double Histogram::Quantile(double q) const {
  int64_t total = count();
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(total);
  int64_t cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    int64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      double lo = i == 0 ? std::min(min(), bounds_.front()) : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : max();
      lo = std::max(lo, min());
      hi = std::min(hi, max());
      if (hi <= lo) return hi;
      double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lo + frac * (hi - lo);
    }
    cum += in_bucket;
  }
  return max();
}

double Histogram::mean() const {
  int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int count) {
  LCREC_CHECK_GT(start, 0.0);
  LCREC_CHECK_GT(factor, 1.0);
  LCREC_CHECK_GT(count, 0);
  std::vector<double> b;
  b.reserve(static_cast<size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i) {
    b.push_back(v);
    v *= factor;
  }
  return b;
}

std::vector<double> Histogram::LinearBounds(double lo, double hi, int count) {
  LCREC_CHECK_GT(hi, lo);
  LCREC_CHECK_GT(count, 0);
  std::vector<double> b;
  b.reserve(static_cast<size_t>(count));
  double step = (hi - lo) / static_cast<double>(count);
  for (int i = 1; i <= count; ++i) {
    b.push_back(lo + step * static_cast<double>(i));
  }
  return b;
}

}  // namespace lcrec::obs

#ifndef LCREC_OBS_PROF_H_
#define LCREC_OBS_PROF_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/sync.h"

namespace lcrec::obs {

/// One row of the flat profile: a span name with its sample counts and
/// the FLOP/byte totals attributed to it while it was innermost.
struct ProfileEntry {
  std::string name;
  int64_t self_samples = 0;   // samples where this span was innermost
  int64_t total_samples = 0;  // samples with this span anywhere on stack
  int64_t flops = 0;
  int64_t bytes = 0;
};

/// Aggregate of one profiling session (possibly several Start/Stop
/// cycles; counts accumulate until Reset).
struct ProfileReport {
  double hz = 0.0;
  double duration_s = 0.0;  // wall time the sampler was running
  int64_t samples = 0;      // one per (tick, registered thread)
  int64_t unattributed = 0; // samples of threads with an empty stack
  std::vector<ProfileEntry> entries;  // sorted by self_samples desc
  /// Collapsed stacks, flamegraph-compatible: "outer;inner" -> count.
  std::vector<std::pair<std::string, int64_t>> collapsed;

  /// Fraction of samples that landed inside a named span (1.0 when every
  /// registered thread was always inside one).
  double AttributedFraction() const;
};

/// Wall-clock sampling profiler. A background thread wakes `hz` times a
/// second and snapshots every live span stack (obs/trace.h); no signal
/// handling, no unwinding — attribution is exactly the ScopedSpan
/// coverage of the code. Enabled automatically when `LCREC_PROFILE_HZ`
/// is set (sampler starts at the first span, stops and reports at
/// process exit; collapsed stacks go to `LCREC_PROFILE_OUT` when set,
/// the flat table to stderr), or manually via Start/Stop for tests.
///
/// Typical rates: 50-500 Hz. Sampling cost is one mutex-guarded vector
/// copy per live thread per tick, independent of span churn.
class SamplingProfiler {
 public:
  static SamplingProfiler& Global();

  /// Starts the sampler thread at `hz` samples/s. No-op when already
  /// running (keeps the first rate). Does not toggle span stacks; the
  /// caller (or the env bootstrap) enables those separately.
  void Start(double hz);

  /// Stops and joins the sampler thread. Counts are kept for Report().
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Drops all accumulated counts (sampler may keep running).
  void Reset();

  ProfileReport Report() const;

  /// Flat self/total table with achieved GFLOP/s and GB/s per span,
  /// most expensive (self) first.
  void WriteFlat(std::ostream& out) const;

  /// One "frame;frame;frame count" line per distinct stack — the input
  /// format of flamegraph.pl / speedscope / inferno.
  void WriteCollapsed(std::ostream& out) const;
  void WriteCollapsedFile(const std::string& path) const;

 private:
  SamplingProfiler() = default;

  void Loop(double hz);
  void SampleOnce();

  mutable Mutex mu_{"obs.prof.samples", 60};
  std::thread thread_;  // touched only by Start/Stop callers
  std::atomic<bool> running_{false};
  double hz_ LCREC_GUARDED_BY(mu_) = 0.0;
  double session_start_us_ LCREC_GUARDED_BY(mu_) = 0.0;
  // Completed sessions only.
  double duration_us_ LCREC_GUARDED_BY(mu_) = 0.0;
  int64_t samples_ LCREC_GUARDED_BY(mu_) = 0;
  int64_t unattributed_ LCREC_GUARDED_BY(mu_) = 0;
  // name -> (self, total) sample counts.
  std::map<std::string, std::pair<int64_t, int64_t>> name_counts_
      LCREC_GUARDED_BY(mu_);
  std::map<std::string, int64_t> collapsed_ LCREC_GUARDED_BY(mu_);
};

}  // namespace lcrec::obs

#endif  // LCREC_OBS_PROF_H_

#ifndef LCREC_OBS_TRACE_H_
#define LCREC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sync.h"

namespace lcrec::obs {

/// One recorded trace event. `phase` follows the Chrome trace_event
/// phase codes: 'X' (the default) is a thread-scoped complete event with
/// a duration; 'b'/'e' are async begin/end pairs matched by `async_id`
/// within a category — the form request-scoped spans use, since a
/// request's stages hop across client and scheduler threads.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   // start, microseconds since process start
  double dur_us = 0.0;  // duration, microseconds ('X' only)
  int tid = 0;          // small per-thread id assigned on first span
  int depth = 0;        // nesting depth on that thread (0 = root span)
  char phase = 'X';
  uint64_t async_id = 0;  // correlates 'b'/'e' pairs; 0 for 'X'
};

/// Process-wide span sink. Disabled by default: ScopedSpan checks one
/// relaxed atomic and records nothing, so instrumented hot paths cost a
/// single load when tracing is off. Enabled automatically when
/// `LCREC_TRACE_OUT` names a file (flushed there as Chrome trace JSON at
/// process exit, loadable in chrome://tracing or Perfetto), or manually
/// via SetEnabled() for tests.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void Record(TraceEvent event);
  void Clear();
  size_t event_count() const;
  std::vector<TraceEvent> Events() const;

  /// Writes all recorded events as a Chrome trace_event JSON document:
  /// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,
  ///   "pid":1,"tid":...,"args":{"depth":...}}, ...]}.
  void WriteChromeTrace(std::ostream& out) const;
  void WriteChromeTraceFile(const std::string& path) const;

 private:
  TraceRecorder();

  std::atomic<bool> enabled_{false};
  mutable Mutex mu_{"obs.trace.events", 80};
  std::vector<TraceEvent> events_ LCREC_GUARDED_BY(mu_);
};

/// RAII span: records [construction, destruction) of the named section
/// on the calling thread when tracing is enabled. Spans nest via a
/// thread-local depth counter; `name` must outlive the span (string
/// literals only).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Elapsed time so far, in milliseconds — usable for metrics even when
  /// tracing is disabled (the clock is always read on construction).
  double ElapsedMs() const;

 private:
  const char* name_;
  double start_us_;
  bool recording_;
  bool stacked_;
};

/// Point-in-time copy of one thread's live span stack, outermost frame
/// first. Frame strings are the span name literals, so they stay valid
/// for the process lifetime.
struct LiveStackSample {
  int tid = 0;
  std::vector<const char*> frames;
};

/// Live span stacks: when enabled, every ScopedSpan additionally
/// pushes/pops its name on a per-thread stack that the sampling
/// profiler (obs/prof.h) snapshots from its own thread. Off by default;
/// enabled automatically when `LCREC_PROFILE_HZ` is set. The only cost
/// while disabled is one relaxed atomic load per span.
void SetSpanStacksEnabled(bool on);
bool SpanStacksEnabled();

/// Snapshots the live stack of every thread that has created at least
/// one span while stacks were enabled (including currently-idle ones,
/// whose `frames` are empty).
std::vector<LiveStackSample> SnapshotLiveSpans();

/// Name of the calling thread's innermost live span, or nullptr when
/// the stack is empty or stacks are disabled. Used by the FLOP
/// accounting layer to attribute kernel work to spans.
const char* CurrentLeafSpan();

/// The calling thread's live span stack, outermost first. Unlike the
/// mutex-guarded cross-thread stacks above, this thread-local view is
/// maintained unconditionally by every ScopedSpan (one push/pop of a
/// string literal pointer, no synchronization), so the LCREC_CHECK
/// failure handler can always name the phase that tripped a check.
const std::vector<const char*>& CurrentThreadSpanFrames();

/// Microseconds since process start (steady clock). The time base of
/// every TraceEvent.
double NowMicros();

/// Small dense id of the calling thread (1, 2, ...), assigned on first
/// use. The same ids appear as `tid` in TraceEvents and flight-recorder
/// events, so the two outputs correlate.
int CurrentThreadId();

}  // namespace lcrec::obs

#endif  // LCREC_OBS_TRACE_H_

#include "obs/slo.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "core/check.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace lcrec::obs {

namespace {

/// Cached handles for the lcrec.serve.slo.* surface. Gauges hold the
/// latest window reading; counters accumulate across windows.
struct SloMetrics {
  Counter& bad_requests;
  Counter& reports;
  Gauge& bad_fraction;
  Gauge& burn_rate;
  Gauge& budget_left;
  Gauge& window_total;

  static SloMetrics& Get() {
    static SloMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new SloMetrics{
          r.GetCounter("lcrec.serve.slo.bad_requests"),
          r.GetCounter("lcrec.serve.slo.reports"),
          r.GetGauge("lcrec.serve.slo.bad_fraction"),
          r.GetGauge("lcrec.serve.slo.burn_rate"),
          r.GetGauge("lcrec.serve.slo.budget_left"),
          r.GetGauge("lcrec.serve.slo.window_total"),
      };
    }();
    return *m;
  }
};

}  // namespace

SloMonitor::SloMonitor(const SloOptions& options) : options_(options) {
  LCREC_CHECK_GT(options_.target_ms, 0.0);
  LCREC_CHECK_GT(options_.error_budget, 0.0);
  LCREC_CHECK_GT(options_.window_s, 0.0);
  LCREC_CHECK_GT(options_.sub_windows, 0);
  bucket_width_us_ =
      options_.window_s * 1e6 / static_cast<double>(options_.sub_windows);
  buckets_.resize(static_cast<size_t>(options_.sub_windows));
}

SloMonitor::~SloMonitor() { StopReporter(); }

double SloMonitor::Now() const {
  return options_.now_us ? options_.now_us() : NowMicros();
}

int64_t SloMonitor::EpochOf(double now_us) const {
  return static_cast<int64_t>(now_us / bucket_width_us_);
}

void SloMonitor::RecordRequest(double latency_ms, bool ok) {
  bool bad = !ok || latency_ms > options_.target_ms;
  double now = Now();
  SloWindow w;
  {
    MutexLock lock(mu_);
    int64_t epoch = EpochOf(now);
    Bucket& bucket =
        buckets_[static_cast<size_t>(epoch % options_.sub_windows)];
    if (bucket.epoch != epoch) {
      // The slot last held a bucket a full window ago; recycle it.
      bucket.epoch = epoch;
      bucket.total = 0;
      bucket.bad = 0;
    }
    ++bucket.total;
    if (bad) ++bucket.bad;
    w = WindowLocked(now);
  }
  if (bad) SloMetrics::Get().bad_requests.Increment();
  PublishMetrics(w);
}

SloWindow SloMonitor::WindowLocked(double now_us) const {
  SloWindow w;
  int64_t newest = EpochOf(now_us);
  int64_t oldest = newest - options_.sub_windows + 1;
  for (const Bucket& b : buckets_) {
    if (b.epoch < oldest || b.epoch > newest) continue;  // expired slot
    w.total += b.total;
    w.bad += b.bad;
  }
  if (w.total > 0) {
    w.bad_fraction = static_cast<double>(w.bad) / static_cast<double>(w.total);
  }
  w.burn_rate = w.bad_fraction / options_.error_budget;
  w.budget_left = 1.0 - w.burn_rate;
  return w;
}

SloWindow SloMonitor::Window() const {
  double now = Now();
  MutexLock lock(mu_);
  return WindowLocked(now);
}

void SloMonitor::PublishMetrics(const SloWindow& w) {
  SloMetrics& m = SloMetrics::Get();
  m.bad_fraction.Set(w.bad_fraction);
  m.burn_rate.Set(w.burn_rate);
  m.budget_left.Set(w.budget_left);
  m.window_total.Set(static_cast<double>(w.total));
}

std::string SloMonitor::StatuszText() const {
  SloWindow w = Window();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "slo: target %gms budget %g%% window %gs | total %lld bad "
                "%lld bad_frac %.4f burn %.3f budget_left %.3f",
                options_.target_ms, options_.error_budget * 100.0,
                options_.window_s, static_cast<long long>(w.total),
                static_cast<long long>(w.bad), w.bad_fraction, w.burn_rate,
                w.budget_left);
  return buf;
}

std::string SloMonitor::StatuszJson() const {
  SloWindow w = Window();
  std::string out = "{\"slo\":{";
  out += "\"target_ms\":" + JsonNumber(options_.target_ms);
  out += ",\"error_budget\":" + JsonNumber(options_.error_budget);
  out += ",\"window_s\":" + JsonNumber(options_.window_s);
  out += ",\"total\":" + std::to_string(w.total);
  out += ",\"bad\":" + std::to_string(w.bad);
  out += ",\"bad_fraction\":" + JsonNumber(w.bad_fraction);
  out += ",\"burn_rate\":" + JsonNumber(w.burn_rate);
  out += ",\"budget_left\":" + JsonNumber(w.budget_left);
  out += "}}";
  return out;
}

void SloMonitor::StartReporter(std::function<void(const std::string&)> sink) {
  if (options_.report_every_s <= 0.0 || reporter_.joinable()) return;
  if (!sink) {
    sink = [](const std::string& line) {
      Log(LogLevel::kInfo, "%s", line.c_str());
    };
  }
  {
    UniqueLock lock(reporter_mu_);
    reporter_stop_ = false;
  }
  auto period = std::chrono::duration<double>(options_.report_every_s);
  reporter_ = std::thread([this, sink = std::move(sink), period] {
    for (;;) {
      {
        UniqueLock lock(reporter_mu_);
        if (reporter_cv_.WaitFor(lock, period, [this]()
                                     LCREC_REQUIRES(reporter_mu_) {
                                       return reporter_stop_;
                                     })) {
          return;
        }
      }
      sink(StatuszText());
      SloMetrics::Get().reports.Increment();
    }
  });
}

void SloMonitor::StopReporter() {
  {
    UniqueLock lock(reporter_mu_);
    reporter_stop_ = true;
  }
  reporter_cv_.NotifyAll();
  if (reporter_.joinable()) reporter_.join();
}

}  // namespace lcrec::obs

#ifndef LCREC_OBS_SYNC_H_
#define LCREC_OBS_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

/// Clang thread-safety annotations (-Wthread-safety), compiled to no-ops
/// on other compilers. The repo's strict build turns the analysis into a
/// hard error when the compiler is clang (scripts/check_warnings.sh);
/// under gcc the macros vanish and the code is plain std::mutex.
///
/// std::mutex and std::lock_guard carry no annotations under libstdc++,
/// so annotating members with LCREC_GUARDED_BY alone would make every
/// correct lock_guard use a false positive. The annotated wrappers
/// below (obs::Mutex, obs::MutexLock) give the analysis real acquire/
/// release events while staying zero-cost aliases of the std types.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LCREC_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef LCREC_THREAD_ANNOTATION_
#define LCREC_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

#define LCREC_CAPABILITY(x) LCREC_THREAD_ANNOTATION_(capability(x))
#define LCREC_SCOPED_CAPABILITY LCREC_THREAD_ANNOTATION_(scoped_lockable)
#define LCREC_GUARDED_BY(x) LCREC_THREAD_ANNOTATION_(guarded_by(x))
#define LCREC_PT_GUARDED_BY(x) LCREC_THREAD_ANNOTATION_(pt_guarded_by(x))
#define LCREC_REQUIRES(...) \
  LCREC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define LCREC_EXCLUDES(...) \
  LCREC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define LCREC_ACQUIRE(...) \
  LCREC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define LCREC_RELEASE(...) \
  LCREC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define LCREC_RETURN_CAPABILITY(x) LCREC_THREAD_ANNOTATION_(lock_returned(x))
#define LCREC_NO_THREAD_SAFETY_ANALYSIS \
  LCREC_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace lcrec::obs {

/// std::mutex with capability annotations. Same size, same cost; only
/// the static analysis sees the difference.
class LCREC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LCREC_ACQUIRE() { mu_.lock(); }
  void unlock() LCREC_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard over obs::Mutex, annotated as a scoped capability so
/// clang tracks the held lock for the guard's lifetime.
class LCREC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LCREC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() LCREC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock-style guard over obs::Mutex, annotated as a scoped
/// capability. Exposes lock()/unlock() (BasicLockable) so it can back a
/// CondVar wait; unlike MutexLock it may therefore be temporarily
/// released during its lifetime.
class LCREC_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) LCREC_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
    owned_ = true;
  }
  ~UniqueLock() LCREC_RELEASE() {
    if (owned_) mu_.unlock();
  }

  void lock() LCREC_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }
  void unlock() LCREC_RELEASE() {
    owned_ = false;
    mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  Mutex& mu_;
  bool owned_ = false;
};

/// Condition variable usable with obs::Mutex via UniqueLock. Thin
/// wrapper over std::condition_variable_any; waits keep the capability
/// held from the analysis's point of view (correct at both endpoints of
/// the wait).
class CondVar {
 public:
  void Wait(UniqueLock& lock) { cv_.wait(lock); }
  template <typename Pred>
  void Wait(UniqueLock& lock, Pred pred) {
    cv_.wait(lock, std::move(pred));
  }
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(UniqueLock& lock,
               const std::chrono::duration<Rep, Period>& timeout, Pred pred) {
    return cv_.wait_for(lock, timeout, std::move(pred));
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace lcrec::obs

#endif  // LCREC_OBS_SYNC_H_

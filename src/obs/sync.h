#ifndef LCREC_OBS_SYNC_H_
#define LCREC_OBS_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

/// Clang thread-safety annotations (-Wthread-safety), compiled to no-ops
/// on other compilers. The repo's strict build turns the analysis into a
/// hard error when the compiler is clang (scripts/check_warnings.sh);
/// under gcc the macros vanish.
///
/// std::mutex and std::lock_guard carry no annotations under libstdc++,
/// so annotating members with LCREC_GUARDED_BY alone would make every
/// correct lock_guard use a false positive. The annotated wrappers
/// below (obs::Mutex, obs::MutexLock) give the analysis real acquire/
/// release events.
///
/// Beyond the static analysis, obs::Mutex is the repo's *dynamic*
/// lock-discipline choke point (the `raw-sync` lint rule forbids the std
/// primitives everywhere else in src/). Every Mutex participates in a
/// global lock-order graph: the first acquisition that would create a
/// cycle — a potential deadlock, even if it never manifests as one —
/// is reported with both conflicting acquisition paths (held locks +
/// live span stacks), before any thread can actually hang. Mutexes
/// constructed with a name and rank additionally get contention/hold
/// accounting (exported at /mutexz and as lcrec.obs.mutex.* metrics)
/// and rank checking: acquiring a ranked mutex while holding one of
/// equal or higher rank aborts immediately. See DESIGN.md §13.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LCREC_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef LCREC_THREAD_ANNOTATION_
#define LCREC_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

#define LCREC_CAPABILITY(x) LCREC_THREAD_ANNOTATION_(capability(x))
#define LCREC_SCOPED_CAPABILITY LCREC_THREAD_ANNOTATION_(scoped_lockable)
#define LCREC_GUARDED_BY(x) LCREC_THREAD_ANNOTATION_(guarded_by(x))
#define LCREC_PT_GUARDED_BY(x) LCREC_THREAD_ANNOTATION_(pt_guarded_by(x))
#define LCREC_REQUIRES(...) \
  LCREC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define LCREC_EXCLUDES(...) \
  LCREC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define LCREC_ACQUIRE(...) \
  LCREC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define LCREC_RELEASE(...) \
  LCREC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define LCREC_RETURN_CAPABILITY(x) LCREC_THREAD_ANNOTATION_(lock_returned(x))
#define LCREC_NO_THREAD_SAFETY_ANALYSIS \
  LCREC_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace lcrec::obs {

/// Detector behaviour on a cycle-creating lock acquisition.
///   kOff    — no tracking at all (raw std::mutex cost).
///   kReport — record a finding (lcrec.obs.mutex.cycles + /mutexz +
///             flight recorder) and continue; release-build default.
///   kFatal  — fail an LCREC_CHECK with both acquisition paths; default
///             in sanitizer builds (CMake defines
///             LCREC_DEADLOCK_DEFAULT_FATAL) and under ctest (the test
///             harness exports LCREC_DEADLOCK=fatal).
/// Rank inversions and re-locking a mutex already held by the same
/// thread abort in every mode except kOff: unlike a lock-order cycle —
/// a *potential* deadlock — those are certain bugs.
enum class DeadlockMode { kOff = 0, kReport = 1, kFatal = 2 };

/// Current mode: LCREC_DEADLOCK env var ({off,report,fatal}) if set,
/// else the compile-time default. Resolved once, on first use.
DeadlockMode GetDeadlockMode();
/// Overrides env + default (tests, bench detector on/off deltas).
void SetDeadlockMode(DeadlockMode mode);
const char* DeadlockModeName(DeadlockMode mode);

namespace sync_internal {
struct LockNode;  // detector-side per-mutex record (sync.cc)

/// Permanently disables lock instrumentation on the calling thread.
/// Called by the LCREC_CHECK failure handler so that the abort path
/// (flight-recorder dump, logging) can never trip the detector
/// recursively, whatever locks the failing thread holds.
void BypassCurrentThread();
}  // namespace sync_internal

/// std::mutex with capability annotations plus dynamic lock-discipline
/// tracking. The default constructor yields an anonymous mutex: it
/// participates in deadlock detection (identified as mutex@<addr> in
/// reports) but is not rank-checked, timed, or listed at /mutexz. The
/// named constructor registers the mutex in the global rank table;
/// `name` must have process lifetime (pass a string literal).
class LCREC_CAPABILITY("mutex") Mutex {
 public:
  static constexpr int kNoRank = -1;

  Mutex();
  /// Named + optionally ranked. Ranks order the acquisition hierarchy:
  /// a thread may acquire a ranked mutex only while every ranked mutex
  /// it already holds has a strictly lower rank. See the rank table in
  /// DESIGN.md §13.
  explicit Mutex(const char* name, int rank = kNoRank);
  ~Mutex();

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LCREC_ACQUIRE();
  void unlock() LCREC_RELEASE();

 private:
  std::mutex mu_;
  sync_internal::LockNode* node_;
};

/// std::lock_guard over obs::Mutex, annotated as a scoped capability so
/// clang tracks the held lock for the guard's lifetime.
class LCREC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LCREC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() LCREC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock-style guard over obs::Mutex, annotated as a scoped
/// capability. Exposes lock()/unlock() (BasicLockable) so it can back a
/// CondVar wait; unlike MutexLock it may therefore be temporarily
/// released during its lifetime.
class LCREC_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) LCREC_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
    owned_ = true;
  }
  ~UniqueLock() LCREC_RELEASE() {
    if (owned_) mu_.unlock();
  }

  void lock() LCREC_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }
  void unlock() LCREC_RELEASE() {
    owned_ = false;
    mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  Mutex& mu_;
  bool owned_ = false;
};

/// Condition variable usable with obs::Mutex via UniqueLock. Thin
/// wrapper over std::condition_variable_any; waits keep the capability
/// held from the analysis's point of view (correct at both endpoints of
/// the wait). The wait's internal unlock/relock goes through
/// Mutex::unlock/lock, so the held-lock stack stays accurate across a
/// wait and re-acquisition after wakeup is rank- and order-checked.
class CondVar {
 public:
  void Wait(UniqueLock& lock) { cv_.wait(lock); }
  template <typename Pred>
  void Wait(UniqueLock& lock, Pred pred) {
    cv_.wait(lock, std::move(pred));
  }
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(UniqueLock& lock,
               const std::chrono::duration<Rep, Period>& timeout, Pred pred) {
    return cv_.wait_for(lock, timeout, std::move(pred));
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// Aggregate stats for one mutex *name* (summed over instances: e.g.
/// every per-thread obs.trace.stack mutex folds into one row). Wait
/// stats count contended acquisitions only; hold stats count every
/// acquisition of a named mutex.
struct MutexStatsRow {
  std::string name;
  int rank = Mutex::kNoRank;
  int instances = 0;  // registered instances, live + destroyed
  int64_t acquisitions = 0;
  int64_t contended = 0;
  int64_t long_holds = 0;
  int64_t wait_total_us = 0;
  int64_t wait_max_us = 0;
  int64_t hold_total_us = 0;
  int64_t hold_max_us = 0;
};

/// Snapshot of all named mutexes, sorted by rank then name.
std::vector<MutexStatsRow> MutexStatsSnapshot();

/// Number of distinct lock-order edges (A held while acquiring B)
/// observed since start / the last reset.
size_t LockOrderEdgeCount();
/// Number of cycle-creating acquisitions detected.
int64_t LockOrderCycleCount();
/// Full text of every recorded cycle finding (report mode keeps them;
/// fatal mode aborts on the first).
std::vector<std::string> LockOrderFindings();

/// Clears the lock-order graph, findings, and per-mutex stats while
/// keeping registrations. Tests only: the graph is global, so death/
/// cycle tests reset it to isolate themselves from edges recorded by
/// other tests in the same process.
void ResetDeadlockStateForTest();

/// The /mutexz page: detector mode, per-name stats table, lock-order
/// edge list, and findings.
std::string MutexzText();

}  // namespace lcrec::obs

#endif  // LCREC_OBS_SYNC_H_

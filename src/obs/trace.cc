#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "obs/export.h"
#include "obs/prof.h"

namespace lcrec::obs {

namespace {

std::atomic<int> g_next_tid{1};

int ThisThreadId() {
  thread_local int id = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local int t_depth = 0;

/// Always-on span frames of this thread, outermost first. Owned and
/// mutated only by the owning thread, so no lock is needed; the check
/// failure handler reads it from the failing thread itself.
std::vector<const char*>& ThisThreadFrames() {
  thread_local std::vector<const char*> frames;
  return frames;
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

// --- Live span stacks (profiler substrate) --------------------------------

std::atomic<bool> g_stacks_enabled{false};

/// One thread's live stack. The owning thread pushes/pops under `mu`;
/// the sampler thread copies `frames` under the same mutex. Kept alive
/// past thread exit by the shared_ptr in the global list (the stack is
/// empty by then, since spans are scoped).
struct ThreadStack {
  Mutex mu{"obs.trace.stack", 71};
  std::vector<const char*> frames LCREC_GUARDED_BY(mu);
  int tid = 0;
};

Mutex& StackListMu() {
  static Mutex* mu = new Mutex("obs.trace.stacklist", 70);
  return *mu;
}

std::vector<std::shared_ptr<ThreadStack>>& StackList() {
  // Never destroyed: the sampler thread may outlive main()'s statics.
  static auto* list = new std::vector<std::shared_ptr<ThreadStack>>();
  return *list;
}

ThreadStack& ThisThreadStack() {
  thread_local std::shared_ptr<ThreadStack> stack = [] {
    auto s = std::make_shared<ThreadStack>();
    s->tid = ThisThreadId();
    MutexLock lock(StackListMu());
    StackList().push_back(s);
    return s;
  }();
  return *stack;
}

}  // namespace

void SetSpanStacksEnabled(bool on) {
  g_stacks_enabled.store(on, std::memory_order_relaxed);
}

bool SpanStacksEnabled() {
  return g_stacks_enabled.load(std::memory_order_relaxed);
}

std::vector<LiveStackSample> SnapshotLiveSpans() {
  std::vector<std::shared_ptr<ThreadStack>> stacks;
  {
    MutexLock lock(StackListMu());
    stacks = StackList();
  }
  std::vector<LiveStackSample> out;
  out.reserve(stacks.size());
  for (const auto& s : stacks) {
    LiveStackSample sample;
    sample.tid = s->tid;
    {
      MutexLock lock(s->mu);
      sample.frames = s->frames;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

const char* CurrentLeafSpan() {
  if (!SpanStacksEnabled()) return nullptr;
  const std::vector<const char*>& frames = ThisThreadFrames();
  return frames.empty() ? nullptr : frames.back();
}

const std::vector<const char*>& CurrentThreadSpanFrames() {
  return ThisThreadFrames();
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - ProcessStart())
      .count();
}

int CurrentThreadId() { return ThisThreadId(); }

TraceRecorder& TraceRecorder::Global() {
  // Never destroyed; see MetricsRegistry::Global for the rationale.
  static TraceRecorder* global = [] {
    auto* r = new TraceRecorder();
    std::atexit([] {
      std::string path = EnvOr("LCREC_TRACE_OUT");
      if (!path.empty()) Global().WriteChromeTraceFile(path);
    });
    std::atexit([] {
      SamplingProfiler& p = SamplingProfiler::Global();
      if (!p.running()) return;
      p.Stop();
      std::string path = EnvOr("LCREC_PROFILE_OUT");
      if (!path.empty()) p.WriteCollapsedFile(path);
      p.WriteFlat(std::cerr);
    });
    return r;
  }();
  return *global;
}

TraceRecorder::TraceRecorder() {
  ProcessStart();  // pin the time base before the first span
  if (!EnvOr("LCREC_TRACE_OUT").empty()) SetEnabled(true);
  // Profiling bootstrap: the first ScopedSpan in any binary touches this
  // constructor, so LCREC_PROFILE_HZ starts the sampler without every
  // main() needing an init call.
  double hz = std::atof(EnvOr("LCREC_PROFILE_HZ").c_str());
  if (hz > 0.0) {
    SetSpanStacksEnabled(true);
    SamplingProfiler::Global().Start(hz);
  }
}

void TraceRecorder::Record(TraceEvent event) {
  MutexLock lock(mu_);
  events_.push_back(std::move(event));
}

void TraceRecorder::Clear() {
  MutexLock lock(mu_);
  events_.clear();
}

size_t TraceRecorder::event_count() const {
  MutexLock lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  MutexLock lock(mu_);
  return events_;
}

void TraceRecorder::WriteChromeTrace(std::ostream& out) const {
  MutexLock lock(mu_);
  out << "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) out << ",";
    if (e.phase == 'b' || e.phase == 'e') {
      // Async begin/end pair: matched by (cat, id, name) across threads.
      out << "{\"name\":\"" << JsonEscape(e.name)
          << "\",\"cat\":\"lcrec.req\",\"ph\":\"" << e.phase
          << "\",\"id\":" << e.async_id << ",\"ts\":" << JsonNumber(e.ts_us)
          << ",\"pid\":1,\"tid\":" << e.tid << "}";
    } else {
      out << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\"lcrec\","
          << "\"ph\":\"X\",\"ts\":" << JsonNumber(e.ts_us)
          << ",\"dur\":" << JsonNumber(e.dur_us) << ",\"pid\":1,\"tid\":"
          << e.tid << ",\"args\":{\"depth\":" << e.depth << "}}";
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceRecorder::WriteChromeTraceFile(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return;
  WriteChromeTrace(out);
}

ScopedSpan::ScopedSpan(const char* name)
    : name_(name),
      start_us_(NowMicros()),
      recording_(TraceRecorder::Global().enabled()),
      stacked_(SpanStacksEnabled()) {
  if (recording_) ++t_depth;
  ThisThreadFrames().push_back(name_);
  if (stacked_) {
    ThreadStack& s = ThisThreadStack();
    MutexLock lock(s.mu);
    s.frames.push_back(name_);
  }
}

ScopedSpan::~ScopedSpan() {
  std::vector<const char*>& frames = ThisThreadFrames();
  if (!frames.empty()) frames.pop_back();
  if (stacked_) {
    ThreadStack& s = ThisThreadStack();
    MutexLock lock(s.mu);
    if (!s.frames.empty()) s.frames.pop_back();
  }
  if (!recording_) return;
  double end_us = NowMicros();
  --t_depth;
  TraceEvent e;
  e.name = name_;
  e.ts_us = start_us_;
  e.dur_us = end_us - start_us_;
  e.tid = ThisThreadId();
  e.depth = t_depth;
  TraceRecorder::Global().Record(std::move(e));
}

double ScopedSpan::ElapsedMs() const {
  return (NowMicros() - start_us_) / 1000.0;
}

}  // namespace lcrec::obs

#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "obs/export.h"

namespace lcrec::obs {

namespace {

std::atomic<int> g_next_tid{1};

int ThisThreadId() {
  thread_local int id = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local int t_depth = 0;

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

}  // namespace

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - ProcessStart())
      .count();
}

TraceRecorder& TraceRecorder::Global() {
  // Never destroyed; see MetricsRegistry::Global for the rationale.
  static TraceRecorder* global = [] {
    auto* r = new TraceRecorder();
    std::atexit([] {
      std::string path = EnvOr("LCREC_TRACE_OUT");
      if (!path.empty()) Global().WriteChromeTraceFile(path);
    });
    return r;
  }();
  return *global;
}

TraceRecorder::TraceRecorder() {
  ProcessStart();  // pin the time base before the first span
  if (!EnvOr("LCREC_TRACE_OUT").empty()) SetEnabled(true);
}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceRecorder::WriteChromeTrace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\"lcrec\","
        << "\"ph\":\"X\",\"ts\":" << JsonNumber(e.ts_us)
        << ",\"dur\":" << JsonNumber(e.dur_us) << ",\"pid\":1,\"tid\":" << e.tid
        << ",\"args\":{\"depth\":" << e.depth << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceRecorder::WriteChromeTraceFile(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return;
  WriteChromeTrace(out);
}

ScopedSpan::ScopedSpan(const char* name)
    : name_(name),
      start_us_(NowMicros()),
      recording_(TraceRecorder::Global().enabled()) {
  if (recording_) ++t_depth;
}

ScopedSpan::~ScopedSpan() {
  if (!recording_) return;
  double end_us = NowMicros();
  --t_depth;
  TraceEvent e;
  e.name = name_;
  e.ts_us = start_us_;
  e.dur_us = end_us - start_us_;
  e.tid = ThisThreadId();
  e.depth = t_depth;
  TraceRecorder::Global().Record(std::move(e));
}

double ScopedSpan::ElapsedMs() const {
  return (NowMicros() - start_us_) / 1000.0;
}

}  // namespace lcrec::obs

#ifndef LCREC_OBS_DEBUGZ_H_
#define LCREC_OBS_DEBUGZ_H_

#include <functional>
#include <string>

#include "obs/http.h"

namespace lcrec::obs {

/// Live introspection surface: one embedded HTTP server per process
/// exposing the observability state that previous layers could only
/// dump post-mortem. Endpoints (all GET, text unless noted):
///
///   /          index of registered endpoints
///   /healthz   200 {"status":"ok"} while every registered health check
///              passes; 503 with a JSON reason body otherwise
///   /metricsz  MetricsRegistry Prometheus text exposition (0.0.4)
///   /varz      the same registry as one JSON document
///   /statusz   run manifest + uptime + every registered statusz section
///   /tracez    TraceRecorder state and a recent-span summary
///   /flightrecz FlightRecorder ring as JSONL
///   /timelinez recent sampled request timelines as JSONL
///   /mutexz    lock-discipline state: detector mode, per-mutex
///              contention/hold stats, lock-order edges, cycle findings
///   /profilez  on-demand sampling-profiler capture
///              (?seconds=N&hz=H, collapsed flamegraph stacks)
///
/// The server binds 127.0.0.1 by default — the surface has no auth and
/// exposes internals, so off-host access must be an explicit decision
/// (LCREC_DEBUG_BIND).
class DebugServer {
 public:
  /// The process-wide instance every binary embeds. Construction
  /// registers the built-in endpoints but does not open a socket.
  static DebugServer& Global();

  /// Binds and serves on `port` (0 = ephemeral; read port() back).
  /// Idempotent: once running, later Start calls (any port) are no-ops
  /// returning true, so several subsystems can all request the surface.
  bool Start(int port, std::string* error = nullptr);
  void Stop();

  bool running() const { return http_.running(); }
  int port() const { return http_.port(); }

  /// Registers an extra endpoint (exact path match).
  void Handle(const std::string& path, HttpHandler handler);

  /// Env bootstrap: starts the global server on LCREC_DEBUG_PORT when
  /// the variable is set (LCREC_DEBUG_BIND overrides the loopback bind).
  /// Returns the serving port, or -1 when the variable is unset or the
  /// bind failed (failure is logged, never fatal — a debug surface must
  /// not take the process down). Cheap to call repeatedly.
  static int MaybeStartFromEnv();

 private:
  DebugServer();
  void RegisterBuiltins();

  HttpServer http_;
};

/// Statusz sections: any subsystem can contribute a named block of text
/// to /statusz (serve contributes its SLO/cache/queue/batch snapshot,
/// the trainer its step/epoch/loss position). The callback runs on the
/// debug server's thread, so it must be thread-safe and non-blocking;
/// it stays registered until unregistered, so objects must unregister
/// in their destructor. Returns an id for UnregisterStatuszSection.
int RegisterStatuszSection(const std::string& name,
                           std::function<std::string()> fn);
void UnregisterStatuszSection(int id);

/// Health checks behind /healthz. A check returns true when healthy;
/// on false, `reason` (may be preset to "") explains why in one line.
/// Any failing check flips /healthz to 503 with a JSON body naming the
/// failed checks. Same threading/lifetime contract as statusz sections.
int RegisterHealthCheck(const std::string& name,
                        std::function<bool(std::string* reason)> fn);
void UnregisterHealthCheck(int id);

/// Point-in-time healthz reading, also usable without HTTP (tests, CLI).
struct HealthzReading {
  bool ok = true;
  std::string json;  // the /healthz response body
};
HealthzReading ReadHealthz();

/// The /statusz response body (sections included), without HTTP.
std::string ReadStatusz();

}  // namespace lcrec::obs

#endif  // LCREC_OBS_DEBUGZ_H_

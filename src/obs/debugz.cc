#include "obs/debugz.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/flightrec.h"
#include "obs/log.h"
#include "obs/manifest.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "obs/sync.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace lcrec::obs {

namespace {

/// Statusz-section and health-check registries. Process-global and
/// heap-allocated (never destroyed) so destructor-time unregistration
/// from any static-lifetime object cannot dangle.
struct SectionEntry {
  int id = 0;
  std::string name;
  std::function<std::string()> fn;
};

struct HealthEntry {
  int id = 0;
  std::string name;
  std::function<bool(std::string*)> fn;
};

struct Registries {
  Mutex mu{"obs.debugz.registries", 10};
  int next_id LCREC_GUARDED_BY(mu) = 1;
  std::vector<SectionEntry> sections LCREC_GUARDED_BY(mu);
  std::vector<HealthEntry> health LCREC_GUARDED_BY(mu);

  static Registries& Get() {
    static Registries* r = new Registries();
    return *r;
  }
};

std::string JsonStr(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

/// /varz: the whole registry as one JSON document (same fields as the
/// JSONL sink, but a single parseable object).
std::string VarzJson() {
  std::ostringstream out;
  out << "{\"manifest\":" << RunManifestJson(CollectRunManifest())
      << ",\"metrics\":[";
  bool first = true;
  for (const MetricSample& s : MetricsRegistry::Global().Samples()) {
    if (!first) out << ",";
    first = false;
    if (s.type == "histogram") {
      out << "{\"name\":" << JsonStr(s.name)
          << ",\"type\":\"histogram\",\"count\":" << s.count
          << ",\"sum\":" << JsonNumber(s.sum)
          << ",\"mean\":" << JsonNumber(s.mean)
          << ",\"min\":" << JsonNumber(s.min)
          << ",\"max\":" << JsonNumber(s.max)
          << ",\"p50\":" << JsonNumber(s.p50)
          << ",\"p95\":" << JsonNumber(s.p95)
          << ",\"p99\":" << JsonNumber(s.p99) << "}";
    } else {
      out << "{\"name\":" << JsonStr(s.name) << ",\"type\":\"" << s.type
          << "\",\"value\":" << JsonNumber(s.value) << "}";
    }
  }
  out << "]}";
  return out.str();
}

/// /tracez: recorder state plus a per-span aggregate of what has been
/// recorded so far (complete 'X' events only; async request spans are
/// /timelinez's job).
std::string TracezText() {
  TraceRecorder& rec = TraceRecorder::Global();
  std::ostringstream out;
  out << "tracing: " << (rec.enabled() ? "enabled" : "disabled")
      << " (LCREC_TRACE_OUT or TraceRecorder::SetEnabled)\n";
  std::vector<TraceEvent> events = rec.Events();
  out << "events: " << events.size() << "\n";
  struct Agg {
    int64_t count = 0;
    double total_us = 0.0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : events) {
    if (e.phase != 'X') continue;
    Agg& a = by_name[e.name];
    ++a.count;
    a.total_us += e.dur_us;
  }
  if (!by_name.empty()) {
    out << "span summary (complete events):\n";
    char line[160];
    for (const auto& kv : by_name) {
      std::snprintf(line, sizeof(line), "  %-32s count %8lld total %12.1f us\n",
                    kv.first.c_str(), static_cast<long long>(kv.second.count),
                    kv.second.total_us);
      out << line;
    }
  }
  size_t shown = std::min<size_t>(events.size(), 20);
  if (shown > 0) {
    out << "last " << shown << " events:\n";
    char line[160];
    for (size_t i = events.size() - shown; i < events.size(); ++i) {
      const TraceEvent& e = events[i];
      std::snprintf(line, sizeof(line),
                    "  ts %12.1f us tid %2d ph %c %s (%.1f us)\n", e.ts_us,
                    e.tid, e.phase, e.name.c_str(), e.dur_us);
      out << line;
    }
  }
  return out.str();
}

/// /profilez?seconds=N&hz=H: a bounded on-demand capture. When the
/// profiler is already running (LCREC_PROFILE_HZ), the capture rides the
/// live session and reports its cumulative stacks; otherwise it runs a
/// private session and restores the prior span-stack state. Blocks the
/// debug server's event loop for the capture window by design — the
/// introspection port is serialized, the serving threads are not.
HttpResponse Profilez(const HttpRequest& req) {
  double seconds = req.NumParam("seconds", 1.0, 0.1, 10.0);
  double hz = req.NumParam("hz", 199.0, 10.0, 1000.0);
  SamplingProfiler& prof = SamplingProfiler::Global();
  bool piggyback = prof.running();
  bool stacks_were_on = SpanStacksEnabled();
  if (!piggyback) {
    SetSpanStacksEnabled(true);
    prof.Reset();
    prof.Start(hz);
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  if (!piggyback) {
    prof.Stop();
    if (!stacks_were_on) SetSpanStacksEnabled(false);
  }
  std::ostringstream body;
  prof.WriteCollapsed(body);
  HttpResponse resp;
  resp.body = body.str();
  if (resp.body.empty()) {
    resp.body = "# no samples landed in a named span during the " +
                std::to_string(seconds) + "s capture window\n";
  }
  return resp;
}

std::string FlightreczJsonl() {
  std::ostringstream out;
  FlightRecorder::Global().WriteJsonl(out);
  return out.str();
}

std::string TimelinezJsonl() {
  std::ostringstream out;
  for (const RequestTimeline& t : RecentTimelines::Global().Snapshot()) {
    out << "{\"request_id\":" << t.request_id()
        << ",\"total_us\":" << JsonNumber(t.TotalUs()) << ",\"stages\":[";
    bool first = true;
    for (const StageSpan& s : t.stages()) {
      if (!first) out << ",";
      first = false;
      out << "{\"stage\":" << JsonStr(s.stage)
          << ",\"start_us\":" << JsonNumber(s.start_us)
          << ",\"dur_us\":" << JsonNumber(s.dur_us) << "}";
    }
    out << "]}\n";
  }
  return out.str();
}

}  // namespace

int RegisterStatuszSection(const std::string& name,
                           std::function<std::string()> fn) {
  Registries& r = Registries::Get();
  MutexLock lock(r.mu);
  int id = r.next_id++;
  r.sections.push_back({id, name, std::move(fn)});
  return id;
}

void UnregisterStatuszSection(int id) {
  Registries& r = Registries::Get();
  MutexLock lock(r.mu);
  auto& v = r.sections;
  v.erase(std::remove_if(v.begin(), v.end(),
                         [id](const SectionEntry& e) { return e.id == id; }),
          v.end());
}

int RegisterHealthCheck(const std::string& name,
                        std::function<bool(std::string*)> fn) {
  Registries& r = Registries::Get();
  MutexLock lock(r.mu);
  int id = r.next_id++;
  r.health.push_back({id, name, std::move(fn)});
  return id;
}

void UnregisterHealthCheck(int id) {
  Registries& r = Registries::Get();
  MutexLock lock(r.mu);
  auto& v = r.health;
  v.erase(std::remove_if(v.begin(), v.end(),
                         [id](const HealthEntry& e) { return e.id == id; }),
          v.end());
}

HealthzReading ReadHealthz() {
  Registries& r = Registries::Get();
  MutexLock lock(r.mu);
  HealthzReading reading;
  std::string failed;
  int checks = 0;
  for (const HealthEntry& e : r.health) {
    ++checks;
    std::string reason;
    if (e.fn(&reason)) continue;
    reading.ok = false;
    if (!failed.empty()) failed += ",";
    failed += "{\"name\":" + JsonStr(e.name) + ",\"reason\":" +
              JsonStr(reason) + "}";
  }
  if (reading.ok) {
    reading.json =
        "{\"status\":\"ok\",\"checks\":" + std::to_string(checks) + "}";
  } else {
    reading.json = "{\"status\":\"unhealthy\",\"failed\":[" + failed + "]}";
  }
  return reading;
}

std::string ReadStatusz() {
  std::ostringstream out;
  out << "lcrec statusz\n";
  out << "manifest: " << RunManifestJson(CollectRunManifest()) << "\n";
  char line[64];
  std::snprintf(line, sizeof(line), "uptime_s: %.1f\n", NowMicros() / 1e6);
  out << line;
  HealthzReading health = ReadHealthz();
  out << "health: " << (health.ok ? "ok" : "UNHEALTHY") << " "
      << health.json << "\n";
  Registries& r = Registries::Get();
  MutexLock lock(r.mu);
  for (const SectionEntry& e : r.sections) {
    out << "--- " << e.name << " ---\n";
    std::string text = e.fn();
    out << text;
    if (text.empty() || text.back() != '\n') out << "\n";
  }
  return out.str();
}

DebugServer::DebugServer() { RegisterBuiltins(); }

DebugServer& DebugServer::Global() {
  // Never destroyed: endpoint handlers and registries may be touched by
  // other static-lifetime objects during shutdown.
  static DebugServer* server = new DebugServer();
  return *server;
}

void DebugServer::Handle(const std::string& path, HttpHandler handler) {
  http_.Handle(path, std::move(handler));
}

void DebugServer::RegisterBuiltins() {
  http_.Handle("/", [this](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "lcrec debugz endpoints:\n";
    for (const std::string& path : http_.HandlerPaths()) {
      if (path != "/") resp.body += "  " + path + "\n";
    }
    return resp;
  });
  http_.Handle("/healthz", [](const HttpRequest&) {
    HealthzReading reading = ReadHealthz();
    HttpResponse resp;
    resp.status = reading.ok ? 200 : 503;
    resp.content_type = "application/json";
    resp.body = reading.json + "\n";
    return resp;
  });
  http_.Handle("/metricsz", [](const HttpRequest&) {
    std::ostringstream body;
    MetricsRegistry::Global().DumpPrometheus(body);
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = body.str();
    return resp;
  });
  http_.Handle("/varz", [](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = VarzJson() + "\n";
    return resp;
  });
  http_.Handle("/statusz", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = ReadStatusz();
    return resp;
  });
  http_.Handle("/tracez", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = TracezText();
    return resp;
  });
  http_.Handle("/flightrecz", [](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = "application/x-ndjson";
    resp.body = FlightreczJsonl();
    return resp;
  });
  http_.Handle("/timelinez", [](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = "application/x-ndjson";
    resp.body = TimelinezJsonl();
    return resp;
  });
  http_.Handle("/mutexz", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = MutexzText();
    return resp;
  });
  http_.Handle("/profilez", Profilez);
}

bool DebugServer::Start(int port, std::string* error) {
  if (http_.running()) return true;
  // Rebuild the server with the requested port but keep registered
  // handlers: HttpServer owns its options at construction, so Start on
  // the Global() instance routes the port through a fresh bind.
  HttpServerOptions opts;
  opts.port = port;
  std::string bind = EnvOr("LCREC_DEBUG_BIND");
  if (!bind.empty()) opts.bind_host = bind;
  return http_.StartOn(opts, error);
}

void DebugServer::Stop() { http_.Stop(); }

int DebugServer::MaybeStartFromEnv() {
  DebugServer& server = Global();
  if (server.running()) return server.port();
  std::string port_str = EnvOr("LCREC_DEBUG_PORT");
  if (port_str.empty()) return -1;
  int port = std::atoi(port_str.c_str());
  if (port < 0 || port > 65535) {
    Log(LogLevel::kWarn, "[debugz] bad LCREC_DEBUG_PORT '%s'",
        port_str.c_str());
    return -1;
  }
  std::string error;
  if (!server.Start(port, &error)) {
    Log(LogLevel::kWarn, "[debugz] cannot start on port %d: %s", port,
        error.c_str());
    return -1;
  }
  Log(LogLevel::kInfo, "[debugz] serving on 127.0.0.1:%d", server.port());
  return server.port();
}

}  // namespace lcrec::obs

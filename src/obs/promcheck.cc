#include "obs/promcheck.h"

#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

namespace lcrec::obs {

namespace {

bool ValidName(const std::string& n) {
  if (n.empty()) return false;
  for (size_t i = 0; i < n.size(); ++i) {
    char c = n[i];
    bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 c == '_' || c == ':';
    bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

bool ValidValue(const std::string& v) {
  if (v == "+Inf" || v == "-Inf" || v == "NaN") return true;
  char* end = nullptr;
  std::strtod(v.c_str(), &end);
  return end != nullptr && *end == '\0' && end != v.c_str();
}

}  // namespace

PromCheckResult CheckPrometheusExposition(const std::string& text) {
  PromCheckResult result;
  auto fail = [&result](const std::string& why, const std::string& line) {
    if (!result.ok) return;  // keep the first violation
    result.ok = false;
    result.error = why + ": '" + line + "'";
  };

  std::map<std::string, std::string> declared;  // family -> type
  std::map<std::string, long long> last_bucket;
  std::map<std::string, long long> inf_bucket;
  std::map<std::string, long long> count_sample;

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!result.ok) break;
    if (line.empty()) {
      fail("blank line in exposition output", line);
      break;
    }
    ++result.lines;
    if (line.find("null") != std::string::npos) {
      fail("literal 'null' (non-finite must be +Inf/-Inf/NaN)", line);
      break;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string name, type;
      ls >> name >> type;
      if (!ValidName(name)) {
        fail("bad family name", line);
        break;
      }
      if (type != "counter" && type != "gauge" && type != "histogram") {
        fail("unknown metric type", line);
        break;
      }
      if (declared.count(name) != 0) {
        fail("duplicate TYPE declaration", line);
        break;
      }
      declared[name] = type;
      ++result.families;
      continue;
    }
    if (line[0] == '#') {
      fail("comment line other than # TYPE", line);
      break;
    }
    // Sample line: <name>[{le="bound"}] <value>
    size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      fail("sample line without a value", line);
      break;
    }
    std::string series = line.substr(0, space);
    std::string value = line.substr(space + 1);
    if (!ValidValue(value)) {
      fail("unparseable sample value", line);
      break;
    }
    std::string name = series;
    std::string le;
    size_t brace = series.find('{');
    if (brace != std::string::npos) {
      name = series.substr(0, brace);
      if (series.back() != '}') {
        fail("unterminated label set", line);
        break;
      }
      std::string label = series.substr(brace + 1, series.size() - brace - 2);
      if (label.rfind("le=\"", 0) != 0 || label.empty() ||
          label.back() != '"') {
        fail("histogram sample label must be le=\"<bound>\"", line);
        break;
      }
      le = label.substr(4, label.size() - 5);
      if (!ValidValue(le)) {
        fail("unparseable le bound", line);
        break;
      }
    }
    if (!ValidName(name)) {
      fail("bad sample name", line);
      break;
    }
    // The family must be declared above this sample: the raw name for
    // counters/gauges, the suffix-stripped base for histogram series.
    std::string base = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      size_t len = std::strlen(suffix);
      if (name.size() > len &&
          name.compare(name.size() - len, len, suffix) == 0) {
        std::string candidate = name.substr(0, name.size() - len);
        auto it = declared.find(candidate);
        if (it != declared.end() && it->second == "histogram") {
          base = candidate;
        }
      }
    }
    if (declared.count(base) == 0) {
      fail("sample before its TYPE line", line);
      break;
    }
    bool is_histogram_series = base != name;
    if (is_histogram_series && name.size() > 7 &&
        name.compare(name.size() - 7, 7, "_bucket") == 0) {
      if (le.empty()) {
        fail("_bucket sample without an le label", line);
        break;
      }
      long long cum = std::atoll(value.c_str());
      if (cum < last_bucket[base]) {
        fail("non-cumulative bucket", line);
        break;
      }
      last_bucket[base] = cum;
      if (le == "+Inf") inf_bucket[base] = cum;
    }
    if (is_histogram_series && name.size() > 6 &&
        name.compare(name.size() - 6, 6, "_count") == 0) {
      count_sample[base] = std::atoll(value.c_str());
    }
  }

  if (result.ok) {
    for (const auto& kv : declared) {
      if (kv.second != "histogram") continue;
      if (inf_bucket.count(kv.first) == 0) {
        fail("histogram family without a +Inf bucket", kv.first);
        break;
      }
      if (count_sample.count(kv.first) == 0) {
        fail("histogram family without a _count sample", kv.first);
        break;
      }
      if (inf_bucket[kv.first] != count_sample[kv.first]) {
        fail("+Inf bucket != _count", kv.first);
        break;
      }
      ++result.histograms;
    }
  }
  return result;
}

}  // namespace lcrec::obs

#ifndef LCREC_OBS_METRICS_H_
#define LCREC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lcrec::obs {

/// Monotonically increasing counter. Lock-free; safe to bump from any
/// thread once a reference is obtained from the registry.
class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written value (loss, learning rate, utilization ratio, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with quantile estimation. Bucket `i` counts
/// observations in (bounds[i-1], bounds[i]]; one overflow bucket catches
/// everything above the last bound. Observe() is lock-free (per-bucket
/// atomics), so hot paths pay one binary search plus three relaxed
/// atomic ops.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket containing the q-th observation. The overflow bucket is
  /// clamped to the observed maximum.
  double Quantile(double q) const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;
  double max() const;
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> bucket_counts() const;
  /// Zeroes all buckets and accumulators (not linearizable against
  /// concurrent Observe calls; intended for quiescent resets).
  void Reset();

  /// `count` exponentially spaced upper bounds starting at `start`,
  /// multiplied by `factor` each step. The usual shape for latencies.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int count);
  /// `count` evenly spaced upper bounds covering [lo, hi].
  static std::vector<double> LinearBounds(double lo, double hi, int count);

 private:
  std::vector<double> bounds_;                  // ascending upper bounds
  std::vector<std::atomic<int64_t>> buckets_;   // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

}  // namespace lcrec::obs

#endif  // LCREC_OBS_METRICS_H_

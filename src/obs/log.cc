#include "obs/log.h"

#include <cstdarg>
#include <cstdio>
#include <string>

#include "obs/export.h"

namespace lcrec::obs {

namespace {

LogLevel ParseLevel(const std::string& s) {
  if (s == "debug" || s == "0") return LogLevel::kDebug;
  if (s == "info" || s == "1") return LogLevel::kInfo;
  if (s == "warn" || s == "warning" || s == "2") return LogLevel::kWarn;
  if (s == "error" || s == "3") return LogLevel::kError;
  return LogLevel::kWarn;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace

LogLevel CurrentLogLevel() {
  static const LogLevel level = ParseLevel(EnvOr("LCREC_LOG_LEVEL", "warn"));
  return level;
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(CurrentLogLevel());
}

namespace {

void VLog(LogLevel level, const char* fmt, std::va_list args) {
  std::fprintf(stderr, "[lcrec:%s] ", LevelName(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

void Log(LogLevel level, const char* fmt, ...) {
  if (!LogEnabled(level)) return;
  std::va_list args;
  va_start(args, fmt);
  VLog(level, fmt, args);
  va_end(args);
}

void LogRaw(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  VLog(level, fmt, args);
  va_end(args);
}

}  // namespace lcrec::obs

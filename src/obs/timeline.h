#ifndef LCREC_OBS_TIMELINE_H_
#define LCREC_OBS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/sync.h"

namespace lcrec::obs {

/// One stage of a request's life: [start_us, start_us + dur_us) on the
/// NowMicros time base. `stage` is a string literal.
struct StageSpan {
  const char* stage = nullptr;
  double start_us = 0.0;
  double dur_us = 0.0;
};

/// Process-unique request id (1, 2, ...). One relaxed atomic increment.
uint64_t NextRequestId();

/// Gap-free per-request timeline. Begin() opens the first stage at a
/// caller-supplied timestamp; each Mark() closes the open stage at `now`
/// and opens the next; Finish() closes the last. Stages therefore tile
/// [begin, finish] exactly — their durations sum to the request's
/// end-to-end latency by construction, which is what makes the
/// breakdown trustworthy for tail attribution.
///
/// Not internally synchronized: callers hand the timeline between
/// threads only across an existing happens-before edge (the serve layer
/// passes it through its admission queue and resolves under a mutex).
class RequestTimeline {
 public:
  RequestTimeline() = default;

  /// Opens `stage` at `t0_us` and stamps the timeline's identity.
  /// `sampled` marks the request for async-span export (EmitAsyncSpans).
  void Begin(uint64_t request_id, bool sampled, const char* stage,
             double t0_us);

  /// Closes the open stage and opens `stage`, both at NowMicros().
  void Mark(const char* stage);

  /// Closes the open stage. Idempotent.
  void Finish();

  uint64_t request_id() const { return request_id_; }
  bool sampled() const { return sampled_; }
  bool finished() const { return finished_; }
  const std::vector<StageSpan>& stages() const { return stages_; }

  /// Sum of all stage durations == end - begin (exact by construction).
  double TotalUs() const;

  /// Emits the timeline into the global TraceRecorder as Chrome async
  /// 'b'/'e' span pairs (id = request id, cat "lcrec.req"): one
  /// enclosing "req" span plus one "req.<stage>" span per stage. No-op
  /// unless the recorder is enabled, this request is sampled, and the
  /// timeline is finished. Call from one thread after Finish().
  void EmitAsyncSpans() const;

  /// "build 12.1us | queue_wait 340.0us | ..." — for logs and statusz.
  std::string Summary() const;

 private:
  uint64_t request_id_ = 0;
  bool sampled_ = false;
  bool finished_ = false;
  std::vector<StageSpan> stages_;
};

/// Bounded ring of recently finished timelines, kept so a live process
/// can be asked "what did the last few requests spend their time on"
/// (the debugz /timelinez endpoint). The serve layer records each
/// sampled request after Finish(); recording copies the timeline (a
/// handful of stage spans), so the ring costs nothing on unsampled
/// requests and a small copy on sampled ones.
class RecentTimelines {
 public:
  /// Timelines retained; older entries are overwritten.
  static constexpr size_t kCapacity = 64;

  static RecentTimelines& Global();

  /// Copies `timeline` into the ring. Only finished timelines carry
  /// meaningful durations; unfinished ones are ignored.
  void Record(const RequestTimeline& timeline);

  /// Retained timelines, oldest first.
  std::vector<RequestTimeline> Snapshot() const;

  void Clear();

 private:
  RecentTimelines() = default;

  mutable Mutex mu_{"obs.timeline.recent", 50};
  std::vector<RequestTimeline> ring_ LCREC_GUARDED_BY(mu_);
  size_t next_ LCREC_GUARDED_BY(mu_) = 0;  // ring insert position
  bool wrapped_ LCREC_GUARDED_BY(mu_) = false;
};

}  // namespace lcrec::obs

#endif  // LCREC_OBS_TIMELINE_H_

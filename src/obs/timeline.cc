#include "obs/timeline.h"

#include <atomic>
#include <cstdio>

#include "core/check.h"
#include "obs/trace.h"

namespace lcrec::obs {

namespace {
std::atomic<uint64_t> g_next_request_id{1};
}  // namespace

uint64_t NextRequestId() {
  return g_next_request_id.fetch_add(1, std::memory_order_relaxed);
}

void RequestTimeline::Begin(uint64_t request_id, bool sampled,
                            const char* stage, double t0_us) {
  LCREC_CHECK(stages_.empty());
  request_id_ = request_id;
  sampled_ = sampled;
  stages_.reserve(8);
  stages_.push_back({stage, t0_us, 0.0});
}

void RequestTimeline::Mark(const char* stage) {
  LCREC_CHECK(!stages_.empty());
  LCREC_CHECK(!finished_);
  double now = NowMicros();
  StageSpan& open = stages_.back();
  open.dur_us = now - open.start_us;
  stages_.push_back({stage, now, 0.0});
}

void RequestTimeline::Finish() {
  if (finished_ || stages_.empty()) return;
  StageSpan& open = stages_.back();
  open.dur_us = NowMicros() - open.start_us;
  finished_ = true;
}

double RequestTimeline::TotalUs() const {
  double total = 0.0;
  for (const StageSpan& s : stages_) total += s.dur_us;
  return total;
}

void RequestTimeline::EmitAsyncSpans() const {
  if (!sampled_ || !finished_ || stages_.empty()) return;
  TraceRecorder& rec = TraceRecorder::Global();
  if (!rec.enabled()) return;
  int tid = CurrentThreadId();
  auto emit = [&rec, tid, this](const std::string& name, char phase,
                                double ts) {
    TraceEvent e;
    e.name = name;
    e.ts_us = ts;
    e.tid = tid;
    e.phase = phase;
    e.async_id = request_id_;
    rec.Record(std::move(e));
  };
  double begin = stages_.front().start_us;
  double end = stages_.back().start_us + stages_.back().dur_us;
  emit("req", 'b', begin);
  for (const StageSpan& s : stages_) {
    emit(std::string("req.") + s.stage, 'b', s.start_us);
    emit(std::string("req.") + s.stage, 'e', s.start_us + s.dur_us);
  }
  emit("req", 'e', end);
}

RecentTimelines& RecentTimelines::Global() {
  static RecentTimelines* ring = new RecentTimelines();
  return *ring;
}

void RecentTimelines::Record(const RequestTimeline& timeline) {
  if (!timeline.finished()) return;
  MutexLock lock(mu_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(timeline);
    next_ = ring_.size() % kCapacity;
    return;
  }
  ring_[next_] = timeline;
  next_ = (next_ + 1) % kCapacity;
  wrapped_ = true;
}

std::vector<RequestTimeline> RecentTimelines::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<RequestTimeline> out;
  out.reserve(ring_.size());
  if (!wrapped_ || ring_.size() < kCapacity) {
    out = ring_;
    return out;
  }
  for (size_t i = 0; i < kCapacity; ++i) {
    out.push_back(ring_[(next_ + i) % kCapacity]);
  }
  return out;
}

void RecentTimelines::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
}

std::string RequestTimeline::Summary() const {
  std::string out;
  char buf[64];
  for (const StageSpan& s : stages_) {
    if (!out.empty()) out += " | ";
    std::snprintf(buf, sizeof(buf), "%s %.1fus", s.stage, s.dur_us);
    out += buf;
  }
  return out;
}

}  // namespace lcrec::obs

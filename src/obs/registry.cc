#include "obs/registry.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <utility>

#include "obs/export.h"
#include "obs/manifest.h"

namespace lcrec::obs {

MetricsRegistry& MetricsRegistry::Global() {
  // Heap-allocated and never destroyed so references cached by call
  // sites (and the atexit flusher below) can never dangle during static
  // destruction.
  static MetricsRegistry* global = [] {
    auto* r = new MetricsRegistry();
    std::atexit([] {
      std::string path = EnvOr("LCREC_METRICS_OUT");
      if (!path.empty()) Global().WriteJsonlFile(path);
    });
    return r;
  }();
  return *global;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::Samples() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& kv : counters_) {
    MetricSample s;
    s.name = kv.first;
    s.type = "counter";
    s.value = static_cast<double>(kv.second->value());
    out.push_back(std::move(s));
  }
  for (const auto& kv : gauges_) {
    MetricSample s;
    s.name = kv.first;
    s.type = "gauge";
    s.value = kv.second->value();
    out.push_back(std::move(s));
  }
  for (const auto& kv : histograms_) {
    const Histogram& h = *kv.second;
    MetricSample s;
    s.name = kv.first;
    s.type = "histogram";
    s.count = h.count();
    s.sum = h.sum();
    s.mean = h.mean();
    s.min = h.min();
    s.max = h.max();
    s.p50 = h.Quantile(0.50);
    s.p95 = h.Quantile(0.95);
    s.p99 = h.Quantile(0.99);
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::WriteJsonl(std::ostream& out) const {
  for (const MetricSample& s : Samples()) {
    if (s.type == "histogram") {
      out << "{\"name\":\"" << JsonEscape(s.name)
          << "\",\"type\":\"histogram\",\"count\":" << s.count
          << ",\"sum\":" << JsonNumber(s.sum)
          << ",\"mean\":" << JsonNumber(s.mean)
          << ",\"min\":" << JsonNumber(s.min)
          << ",\"max\":" << JsonNumber(s.max)
          << ",\"p50\":" << JsonNumber(s.p50)
          << ",\"p95\":" << JsonNumber(s.p95)
          << ",\"p99\":" << JsonNumber(s.p99) << "}\n";
    } else {
      out << "{\"name\":\"" << JsonEscape(s.name) << "\",\"type\":\"" << s.type
          << "\",\"value\":" << JsonNumber(s.value) << "}\n";
    }
  }
}

void MetricsRegistry::WriteJsonlFile(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return;
  out << RunManifestHeaderRow() << '\n';
  WriteJsonl(out);
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:] only.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

/// Prometheus renders values as Go floats; JsonNumber's %.9g is
/// compatible, but +/-Inf and NaN must be spelled out (JsonNumber turns
/// NaN into JSON null, which the exposition format rejects).
std::string PromNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (v == std::numeric_limits<double>::infinity()) return "+Inf";
  if (v == -std::numeric_limits<double>::infinity()) return "-Inf";
  return JsonNumber(v);
}

}  // namespace

void MetricsRegistry::DumpPrometheus(std::ostream& out) const {
  MutexLock lock(mu_);
  for (const auto& kv : counters_) {
    std::string name = PromName(kv.first);
    out << "# TYPE " << name << " counter\n"
        << name << ' ' << kv.second->value() << '\n';
  }
  for (const auto& kv : gauges_) {
    std::string name = PromName(kv.first);
    out << "# TYPE " << name << " gauge\n"
        << name << ' ' << PromNumber(kv.second->value()) << '\n';
  }
  for (const auto& kv : histograms_) {
    const Histogram& h = *kv.second;
    std::string name = PromName(kv.first);
    out << "# TYPE " << name << " histogram\n";
    const std::vector<double>& bounds = h.bounds();
    std::vector<int64_t> buckets = h.bucket_counts();
    int64_t cumulative = 0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += buckets[i];
      out << name << "_bucket{le=\"" << PromNumber(bounds[i]) << "\"} "
          << cumulative << '\n';
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count() << '\n'
        << name << "_sum " << PromNumber(h.sum()) << '\n'
        << name << "_count " << h.count() << '\n';
  }
}

void MetricsRegistry::DumpPrometheusFile(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return;
  DumpPrometheus(out);
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& kv : counters_) kv.second->Reset();
  for (auto& kv : gauges_) kv.second->Reset();
  for (auto& kv : histograms_) kv.second->Reset();
}

std::vector<std::string> MetricsRegistry::MetricNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& kv : counters_) names.push_back(kv.first);
  for (const auto& kv : gauges_) names.push_back(kv.first);
  for (const auto& kv : histograms_) names.push_back(kv.first);
  return names;
}

}  // namespace lcrec::obs

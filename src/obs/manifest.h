#ifndef LCREC_OBS_MANIFEST_H_
#define LCREC_OBS_MANIFEST_H_

#include <string>

namespace lcrec::obs {

/// Identity of one run: enough to attribute a metrics dump or a
/// benchmark record to a build and a machine. Emitted as the first line
/// of every ResultEmitter / metrics JSONL file and embedded in perfgate
/// records (obs/perfgate.h).
struct RunManifest {
  std::string timestamp;  // ISO-8601 UTC, e.g. "2026-08-07T12:34:56Z"
  std::string git_sha;    // LCREC_GIT_SHA env, else configure-time sha
  std::string compiler;   // e.g. "g++ 12.2.0"
  std::string flags;      // build type + CXX flags the obs lib saw
  std::string cpu;        // /proc/cpuinfo model name, "unknown" elsewhere
  int cores = 0;          // std::thread::hardware_concurrency
};

/// Fills every field from the running process/host.
RunManifest CollectRunManifest();

/// One JSON object, keys in struct order:
///   {"timestamp":"...","git_sha":"...","compiler":"...","flags":"...",
///    "cpu":"...","cores":N}
std::string RunManifestJson(const RunManifest& m);

/// Parses RunManifestJson output (also tolerates the object embedded in
/// a larger document as long as the keys appear once). Returns false
/// when a required string key is missing.
bool ParseRunManifestJson(const std::string& json, RunManifest* out);

/// The manifest header row shared by all JSONL sinks:
///   {"manifest":{...}}
std::string RunManifestHeaderRow();

}  // namespace lcrec::obs

#endif  // LCREC_OBS_MANIFEST_H_

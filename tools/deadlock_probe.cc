// deadlock_probe: drives the obs::Mutex lock-discipline detector end to
// end for the ci.sh deadlock gate.
//
//   (no flag)      clean run: four threads hammer probe.lo -> probe.hi
//                  in the declared rank order under real contention;
//                  exits 0 only when the detector reports 0 findings.
//   --cycle        report mode: provokes a probe.a / probe.b lock-order
//                  inversion and prints the findings. The cycle is
//                  detected on the first cycle-creating acquisition —
//                  single thread, no actual deadlock, no timeout — and
//                  report mode must not kill the process (exit 0).
//   --cycle-fatal  fatal mode: the same inversion must abort the
//                  process with the report on stderr (the gate asserts
//                  a non-zero exit).

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/sync.h"

namespace obs = lcrec::obs;

namespace {

void ProvokeCycle() {
  obs::Mutex a("probe.a");
  obs::Mutex b("probe.b");
  {
    obs::MutexLock la(a);
    obs::MutexLock lb(b);  // edge a -> b
  }
  {
    obs::MutexLock lb(b);
    obs::MutexLock la(a);  // edge b -> a: detected here, before any hang
  }
}

int RunClean() {
  obs::Mutex lo("probe.lo", 1);
  obs::Mutex hi("probe.hi", 2);
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&lo, &hi, &counter] {
      for (int i = 0; i < 200; ++i) {
        obs::MutexLock l1(lo);
        obs::MutexLock l2(hi);
        ++counter;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  std::printf("deadlock_probe: clean run complete (%d critical sections, "
              "%zu lock-order edges)\n",
              counter, obs::LockOrderEdgeCount());
  std::vector<std::string> findings = obs::LockOrderFindings();
  if (obs::LockOrderCycleCount() != 0 || !findings.empty()) {
    std::printf("deadlock_probe: FAIL — unexpected findings:\n");
    for (const std::string& f : findings) std::printf("%s\n", f.c_str());
    return 1;
  }
  std::printf("deadlock_probe: OK (0 findings)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool cycle = false;
  bool fatal = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cycle") == 0) {
      cycle = true;
    } else if (std::strcmp(argv[i], "--cycle-fatal") == 0) {
      cycle = true;
      fatal = true;
    } else {
      std::printf("usage: deadlock_probe [--cycle|--cycle-fatal]\n");
      return 2;
    }
  }
  obs::SetDeadlockMode(fatal ? obs::DeadlockMode::kFatal
                             : obs::DeadlockMode::kReport);
  if (!cycle) return RunClean();
  ProvokeCycle();  // fatal mode aborts inside, before the reversed lock
  std::vector<std::string> findings = obs::LockOrderFindings();
  if (findings.empty()) {
    std::printf("deadlock_probe: FAIL — cycle not detected\n");
    return 1;
  }
  for (const std::string& f : findings) std::printf("%s\n", f.c_str());
  std::printf("deadlock_probe: cycle detected (%zu finding(s))\n",
              findings.size());
  return 0;
}

// Headless probe for the ci.sh debugz gate: embeds a serve::Server with
// an ephemeral debug port, drives client load against it, and scrapes
// every debugz endpoint over real HTTP with the repo's raw-socket
// client — validating payloads (Prometheus conformance, JSON/JSONL
// shape, collapsed profiler stacks) and finally forcing a ckpt health
// trip to prove /healthz flips to 503 with the subsystem and step in
// the reason body. Exits 0 and prints "debugz_probe: PASS" only when
// every check holds; any failure prints the reason and exits 1.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/health.h"
#include "core/rng.h"
#include "llm/minillm.h"
#include "obs/debugz.h"
#include "obs/flightrec.h"
#include "obs/http.h"
#include "obs/promcheck.h"
#include "quant/indexing.h"
#include "serve/server.h"
#include "text/vocab.h"

namespace {

using namespace lcrec;

int g_failures = 0;

void Fail(const std::string& what) {
  std::fprintf(stderr, "debugz_probe: FAIL: %s\n", what.c_str());
  ++g_failures;
}

void Expect(bool ok, const std::string& what) {
  if (!ok) Fail(what);
}

void ExpectContains(const std::string& haystack, const std::string& needle,
                    const std::string& where) {
  if (haystack.find(needle) == std::string::npos) {
    Fail(where + " missing \"" + needle + "\"; got: " +
         haystack.substr(0, 200));
  }
}

/// Same tiny system bench_serve loads: untrained MiniLlm over a random
/// item index — decode cost is weight-independent, so this exercises the
/// full serve path at CI-friendly speed.
struct Probe {
  text::Vocabulary vocab;
  quant::ItemIndexing indexing = quant::ItemIndexing::VanillaId(1);
  std::unique_ptr<quant::PrefixTrie> trie;
  std::unique_ptr<llm::MiniLlm> model;
  std::unique_ptr<llm::IndexTokenMap> token_map;

  Probe() {
    core::Rng rng(7);
    indexing = quant::ItemIndexing::Random(/*items=*/48, /*levels=*/3,
                                           /*codes=*/6, rng);
    trie = std::make_unique<quant::PrefixTrie>(indexing);
    for (const std::string& tok : indexing.AllTokenStrings()) {
      vocab.AddToken(tok);
    }
    llm::MiniLlmConfig cfg;
    cfg.vocab_size = vocab.size();
    cfg.d_model = 32;
    cfg.n_heads = 4;
    cfg.n_layers = 2;
    cfg.d_ff = 64;
    cfg.max_seq = 64;
    cfg.seed = 3;
    model = std::make_unique<llm::MiniLlm>(cfg);
    token_map = std::make_unique<llm::IndexTokenMap>(indexing, vocab);
  }

  serve::PromptBuilder Builder() const {
    int v = vocab.size();
    return [v](const std::vector<int>& history) {
      std::vector<int> prompt = {text::Vocabulary::kBos};
      for (int item : history) prompt.push_back(4 + (item % (v - 4)));
      return prompt;
    };
  }
};

std::string Get(int port, const std::string& target, int expect_status,
                obs::HttpResponse* out = nullptr) {
  obs::HttpResponse response;
  std::string error;
  if (!obs::HttpGet("127.0.0.1", port, target, &response, &error)) {
    Fail("GET " + target + ": " + error);
    return "";
  }
  if (response.status != expect_status) {
    Fail("GET " + target + ": status " + std::to_string(response.status) +
         ", want " + std::to_string(expect_status));
  }
  if (out != nullptr) *out = response;
  return response.body;
}

}  // namespace

int main() {
  Probe probe;
  serve::ServerOptions opts;
  opts.debug_port = 0;  // ephemeral: the gate must not collide with anything
  opts.trace_sample_n = 1;
  serve::Server server(*probe.model, *probe.trie, *probe.token_map,
                       probe.Builder(), opts);

  obs::DebugServer& debugz = obs::DebugServer::Global();
  if (!debugz.running()) {
    std::fprintf(stderr, "debugz_probe: FAIL: debug server not running\n");
    return 1;
  }
  const int port = debugz.port();
  std::printf("debugz_probe: serving on 127.0.0.1:%d\n", port);

  // Client load: a few threads cycling a small history set (some cache
  // hits, some misses) for the whole scrape pass, so every endpoint is
  // read while the server is actually working.
  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        serve::RecommendRequest req;
        // Mostly-distinct histories (i cycles past the cache capacity):
        // the load must keep decoding, or /profilez has no spans to
        // attribute and /metricsz counters freeze mid-scrape.
        req.history = {t, (i % 997) + 1, 2 * t + 3, i % 13};
        req.top_n = 5;
        auto resp = server.Recommend(req);
        if (resp.status == serve::Status::kOk) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }
  // Let some traffic land before the first scrape.
  while (completed.load() < 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // --- index ---
  std::string index = Get(port, "/", 200);
  for (const char* ep : {"/healthz", "/metricsz", "/varz", "/statusz",
                         "/tracez", "/flightrecz", "/timelinez", "/mutexz",
                         "/profilez"}) {
    ExpectContains(index, ep, "/ index");
  }

  // --- /metricsz: Prometheus exposition, validated by the shared checker ---
  obs::HttpResponse metricsz;
  Get(port, "/metricsz", 200, &metricsz);
  ExpectContains(metricsz.content_type, "version=0.0.4", "/metricsz type");
  obs::PromCheckResult prom = obs::CheckPrometheusExposition(metricsz.body);
  Expect(prom.ok, "/metricsz conformance: " + prom.error);
  Expect(prom.families >= 4, "/metricsz families >= 4");
  ExpectContains(metricsz.body, "lcrec_serve_requests", "/metricsz");
  // Lock-discipline metrics: the shared conformance check above already
  // covers their exposition format; these pins prove they are present.
  ExpectContains(metricsz.body, "lcrec_obs_mutex_acquisitions", "/metricsz");
  ExpectContains(metricsz.body, "lcrec_obs_mutex_wait_us", "/metricsz");

  // --- /varz: the same registry as JSON ---
  std::string varz = Get(port, "/varz", 200);
  ExpectContains(varz, "{\"manifest\":", "/varz");
  ExpectContains(varz, "\"metrics\":[", "/varz");
  ExpectContains(varz, "lcrec.serve.requests", "/varz");

  // --- /statusz: manifest + the serve section ---
  std::string statusz = Get(port, "/statusz", 200);
  ExpectContains(statusz, "manifest:", "/statusz");
  ExpectContains(statusz, "--- serve ---", "/statusz");
  ExpectContains(statusz, "cache: hits", "/statusz");
  ExpectContains(statusz, "queue: depth", "/statusz");
  ExpectContains(statusz, "batch: active_lanes", "/statusz");

  // --- /tracez ---
  std::string tracez = Get(port, "/tracez", 200);
  ExpectContains(tracez, "tracing:", "/tracez");
  ExpectContains(tracez, "events:", "/tracez");

  // --- /mutexz: lock-discipline state while the server is under load ---
  std::string mutexz = Get(port, "/mutexz", 200);
  ExpectContains(mutexz, "deadlock detector: mode", "/mutexz");
  ExpectContains(mutexz, "lock-order edges", "/mutexz");
  ExpectContains(mutexz, "findings:", "/mutexz");
  // The rank table must show the annotated mutexes this probe exercises.
  for (const char* name : {"serve.queue", "serve.cache", "serve.server.state",
                           "obs.debugz.registries", "obs.metrics.registry"}) {
    ExpectContains(mutexz, name, "/mutexz rank table");
  }
  // A live load run must register zero cycle findings.
  ExpectContains(mutexz, "cycles 0", "/mutexz");

  // --- /flightrecz: JSONL ring; a probe mark must round-trip ---
  obs::FlightRecorder::Global().Record(obs::FrKind::kMark, "debugz_probe",
                                       /*a=*/7, /*b=*/11);
  std::string flightrecz = Get(port, "/flightrecz", 200);
  ExpectContains(flightrecz, "\"kind\":", "/flightrecz");
  ExpectContains(flightrecz, "debugz_probe", "/flightrecz");

  // --- /timelinez: recent sampled request timelines ---
  std::string timelinez = Get(port, "/timelinez", 200);
  ExpectContains(timelinez, "\"request_id\":", "/timelinez");
  ExpectContains(timelinez, "\"stages\":[", "/timelinez");

  // --- /profilez: a 1s capture while load is running must see stacks ---
  std::string profilez = Get(port, "/profilez?seconds=1&hz=397", 200);
  Expect(!profilez.empty(), "/profilez empty");
  if (profilez.rfind("#", 0) == 0) {
    Fail("/profilez captured no samples under load: " +
         profilez.substr(0, 120));
  } else {
    // The decode-heavy load must attribute samples to llm.* spans, not
    // only <unattributed>.
    ExpectContains(profilez, "llm.", "/profilez stacks");
  }

  // --- /healthz: 200 while clean, 503 after a forced health trip ---
  std::string healthz = Get(port, "/healthz", 200);
  ExpectContains(healthz, "\"status\":\"ok\"", "/healthz");

  {
    ckpt::HealthOptions hopts;
    hopts.max_retries = 3;
    ckpt::HealthGuard guard(hopts, "debugz_probe");
    guard.NoteStep(42);
    double nan = std::strtod("nan", nullptr);
    // Recoverable trip (rollback available, retries remain): counts and
    // publishes without aborting the process.
    bool retry = guard.OnUnhealthy(nan, 1.0, /*can_rollback=*/true);
    Expect(retry, "OnUnhealthy should ask for a rollback retry");
  }
  std::string sick = Get(port, "/healthz", 503);
  ExpectContains(sick, "\"status\":\"unhealthy\"", "/healthz after trip");
  ExpectContains(sick, "ckpt.health", "/healthz after trip");
  ExpectContains(sick, "step 42", "/healthz after trip");
  ExpectContains(sick, "debugz_probe", "/healthz after trip");
  ckpt::ResetCkptHealthzForTest();
  Get(port, "/healthz", 200);

  stop.store(true);
  for (auto& c : clients) c.join();

  int served = completed.load();
  std::printf("debugz_probe: %d requests served during scrape pass\n", served);
  Expect(served > 0, "no requests completed");

  if (g_failures > 0) {
    std::fprintf(stderr, "debugz_probe: FAIL (%d check(s))\n", g_failures);
    return 1;
  }
  std::printf("debugz_probe: PASS\n");
  return 0;
}

// flightrec_probe: exercises the always-on flight recorder end to end
// for the CI flightrec gate (scripts/ci.sh). It records a burst of
// events from several threads — shed events like the serving stack's,
// batch ticks, a final mark — and then, with --crash, fails an
// LCREC_CHECK so the failure handler in core/check.cc dumps the ring to
// stderr on the way to abort(). The gate asserts that the process died,
// that the dump markers appeared, and that the JSONL between them
// parses and contains the recorded sheds.
//
// Without --crash it prints the recorded-event count and exits 0, which
// doubles as a handy manual smoke for the recorder.

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "core/check.h"
#include "obs/flightrec.h"

int main(int argc, char** argv) {
  using lcrec::obs::FlightRecorder;
  using lcrec::obs::FrKind;
  bool crash = argc > 1 && std::strcmp(argv[1], "--crash") == 0;

  FlightRecorder& fr = FlightRecorder::Global();
  // Cross-thread events: the dump must merge per-thread rings.
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&fr] {
      for (int i = 0; i < 4; ++i) {
        fr.Record(FrKind::kBatchTick, "batch_tick", i + 1, 8 * (i + 1));
      }
    });
  }
  for (auto& w : workers) w.join();
  // The event shape the gate greps for: recent sheds with request ids.
  for (int i = 0; i < 8; ++i) {
    fr.Record(FrKind::kShed, "shed_queue_full", 1000 + i, 256);
  }
  fr.Record(FrKind::kMark, "probe_armed", 0, 0);

  if (crash) {
    LCREC_CHECK(1 + 1 == 3);  // forced failure -> flight-recorder dump
  }
  std::printf("flightrec_probe: recorded %lld events\n",
              static_cast<long long>(fr.recorded()));
  return 0;
}

// Headless probe for the ci.sh chaos gate: embeds a serve::Server with
// the degradation ladder on, drives deadline-bearing client load while
// the chaos injector fires decode delays, decode failures, and queue
// pressure, and asserts the resilience contract end to end:
//
//   availability — every admitted request resolves kOk (some tier of the
//                  ladder answers; nothing errors, nothing hangs);
//   latency      — no response exceeds the bound 2x deadline plus a
//                  small multiple of the injected delay (the server
//                  degrades instead of collapsing);
//   labeling     — every response's degrade_label is consistent with its
//                  DegradeLevel, and the injected faults actually forced
//                  degraded responses (the gate cannot pass vacuously);
//   accounting   — requests == completed (every call reached exactly one
//                  terminal state) and the per-tier counters are sane.
//
// Chaos comes from the LCREC_CHAOS env when set (the gate sets it, so
// the env grammar is exercised end to end); otherwise the probe arms an
// equivalent seeded spec programmatically. `--healthy` instead disarms
// chaos entirely and asserts the zero-degradation healthy-path
// invariant: all-full labels, no fallbacks, no decode faults.
//
// Exits 0 and prints "chaos_probe: PASS" only when every check holds.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "llm/minillm.h"
#include "quant/indexing.h"
#include "serve/chaos.h"
#include "serve/server.h"
#include "text/vocab.h"

namespace {

using namespace lcrec;

int g_failures = 0;

void Expect(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "chaos_probe: FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

/// Same tiny system bench_serve and debugz_probe load: an untrained
/// MiniLlm over a random item index — decode cost is weight-independent,
/// so the full serve path runs at CI-friendly speed.
struct Probe {
  text::Vocabulary vocab;
  quant::ItemIndexing indexing = quant::ItemIndexing::VanillaId(1);
  std::unique_ptr<quant::PrefixTrie> trie;
  std::unique_ptr<llm::MiniLlm> model;
  std::unique_ptr<llm::IndexTokenMap> token_map;

  Probe() {
    core::Rng rng(7);
    indexing = quant::ItemIndexing::Random(/*items=*/48, /*levels=*/3,
                                           /*codes=*/6, rng);
    trie = std::make_unique<quant::PrefixTrie>(indexing);
    for (const std::string& tok : indexing.AllTokenStrings()) {
      vocab.AddToken(tok);
    }
    llm::MiniLlmConfig cfg;
    cfg.vocab_size = vocab.size();
    cfg.d_model = 32;
    cfg.n_heads = 4;
    cfg.n_layers = 2;
    cfg.d_ff = 64;
    cfg.max_seq = 64;
    cfg.seed = 3;
    model = std::make_unique<llm::MiniLlm>(cfg);
    token_map = std::make_unique<llm::IndexTokenMap>(indexing, vocab);
  }

  serve::PromptBuilder Builder() const {
    int v = vocab.size();
    return [v](const std::vector<int>& history) {
      std::vector<int> prompt = {text::Vocabulary::kBos};
      for (int item : history) prompt.push_back(4 + (item % (v - 4)));
      return prompt;
    };
  }
};

/// Per-response tallies, merged across client threads at the end.
struct Tally {
  int ok = 0;
  int not_ok = 0;
  int label_mismatch = 0;
  int over_bound = 0;
  int degraded = 0;
  double max_latency_ms = 0.0;
};

bool LabelConsistent(const serve::RecommendResponse& r) {
  using serve::DegradeLevel;
  const std::string label = r.degrade_label;
  switch (r.degrade) {
    case DegradeLevel::kFull:
      return label == "full";
    case DegradeLevel::kBudgetCapped:
      return label == "budget_capped" || label == "partial_decode";
    case DegradeLevel::kStaleCache:
      return label == "stale_cache";
    case DegradeLevel::kPopularity:
      return label == "popularity";
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool healthy = argc > 1 && std::strcmp(argv[1], "--healthy") == 0;

  constexpr double kDeadlineMs = 100.0;
  constexpr double kDelayMs = 25.0;
  // "Degrades instead of collapsing": deadline-expired requests resolve
  // from a fallback tier at admission, so even with injected delay
  // spikes stacking in the queue no response strays far past its budget.
  const double bound_ms = 2.0 * kDeadlineMs + 8.0 * kDelayMs;

  if (healthy) {
    serve::chaos::DisarmChaos();
  } else if (!serve::chaos::ChaosArmed()) {
    // No LCREC_CHAOS in the env: arm the gate's default mix ourselves,
    // seeded, so the probe is self-contained when run by hand.
    std::vector<serve::chaos::ChaosSpec> specs(3);
    specs[0].site = serve::chaos::ChaosSpec::Site::kDecode;
    specs[0].mode = serve::chaos::ChaosSpec::Mode::kDelay;
    specs[0].rate = 0.25;
    specs[0].param_ms = kDelayMs;
    specs[1].site = serve::chaos::ChaosSpec::Site::kDecode;
    specs[1].mode = serve::chaos::ChaosSpec::Mode::kFail;
    specs[1].rate = 0.25;
    specs[2].site = serve::chaos::ChaosSpec::Site::kQueue;
    specs[2].mode = serve::chaos::ChaosSpec::Mode::kFull;
    specs[2].rate = 0.10;
    serve::chaos::ArmChaos(specs, /*seed=*/42);
  }

  Probe probe;
  serve::ServerOptions opts;
  opts.beam_size = 4;
  opts.degraded_beam = 2;
  opts.cache_ttl_ms = 50.0;  // lets repeated histories age into the
                             // stale tier mid-run
  opts.slow_request_ms = 0.0;
  serve::Server server(*probe.model, *probe.trie, *probe.token_map,
                       probe.Builder(), opts);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 40;
  std::vector<Tally> tallies(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Tally& tally = tallies[static_cast<size_t>(t)];
      for (int i = 0; i < kPerThread; ++i) {
        serve::RecommendRequest req;
        // A small cycling pool of histories: repeats land cache entries
        // that can later be served stale, while distinct ones decode.
        req.history = {t, (i % 16) + 1, 2 * t + 3};
        req.top_n = 5;
        req.deadline_ms = healthy ? 0.0 : kDeadlineMs;
        serve::RecommendResponse resp = server.Recommend(req);
        if (resp.status == serve::Status::kOk) {
          ++tally.ok;
        } else {
          ++tally.not_ok;
        }
        if (!LabelConsistent(resp)) ++tally.label_mismatch;
        if (resp.degrade != serve::DegradeLevel::kFull) ++tally.degraded;
        if (resp.latency_ms > tally.max_latency_ms) {
          tally.max_latency_ms = resp.latency_ms;
        }
        if (!healthy && resp.latency_ms > bound_ms) ++tally.over_bound;
      }
    });
  }
  for (std::thread& c : clients) c.join();

  Tally sum;
  for (const Tally& t : tallies) {
    sum.ok += t.ok;
    sum.not_ok += t.not_ok;
    sum.label_mismatch += t.label_mismatch;
    sum.over_bound += t.over_bound;
    sum.degraded += t.degraded;
    if (t.max_latency_ms > sum.max_latency_ms) {
      sum.max_latency_ms = t.max_latency_ms;
    }
  }
  const int total = kThreads * kPerThread;
  serve::ServerStats stats = server.stats();
  int64_t fires = serve::chaos::ChaosFires();
  server.Stop();

  std::printf(
      "chaos_probe: mode=%s requests=%d ok=%d degraded=%d "
      "(budget_capped=%lld stale_cache=%lld popularity=%lld) "
      "decode_failures=%lld retries=%lld breaker_short_circuits=%lld "
      "max_latency=%.1fms chaos_fires=%lld\n",
      healthy ? "healthy" : "chaos", total, sum.ok, sum.degraded,
      static_cast<long long>(stats.degraded_budget_capped),
      static_cast<long long>(stats.degraded_stale_cache),
      static_cast<long long>(stats.degraded_popularity),
      static_cast<long long>(stats.decode_failures),
      static_cast<long long>(stats.decode_retries),
      static_cast<long long>(stats.breaker_short_circuits),
      sum.max_latency_ms, static_cast<long long>(fires));

  // Availability: with the ladder on, every call ends kOk — the fallback
  // tiers absorb what the injected faults break.
  Expect(sum.ok == total && sum.not_ok == 0,
         "availability: " + std::to_string(sum.not_ok) + "/" +
             std::to_string(total) + " requests did not resolve kOk");
  Expect(sum.label_mismatch == 0,
         std::to_string(sum.label_mismatch) +
             " response(s) with degrade_label inconsistent with their "
             "DegradeLevel");
  // Accounting: every Recommend call reached exactly one terminal state,
  // and (all kOk, no shutdown) that state was completion.
  Expect(stats.requests == total,
         "stats.requests=" + std::to_string(stats.requests) + ", want " +
             std::to_string(total));
  Expect(stats.requests == stats.completed + stats.shed_queue_full +
                               stats.shed_deadline + stats.shed_shutdown,
         "terminal-state accounting does not sum: requests=" +
             std::to_string(stats.requests) +
             " completed=" + std::to_string(stats.completed));
  Expect(stats.shed_queue_full == 0 && stats.shed_deadline == 0,
         "degraded_fallbacks on must convert sheds, not count them");

  if (healthy) {
    // Healthy-path invariance: no chaos, no deadline -> the ladder never
    // engages and nothing below tier 0 is touched.
    Expect(sum.degraded == 0, "healthy run produced degraded responses");
    Expect(stats.degraded_budget_capped == 0 &&
               stats.degraded_stale_cache == 0 &&
               stats.degraded_popularity == 0,
           "healthy run bumped degrade counters");
    Expect(stats.decode_failures == 0 && stats.breaker_short_circuits == 0,
           "healthy run saw decode faults");
    Expect(fires == 0, "chaos fired in healthy mode");
  } else {
    Expect(fires > 0, "chaos armed but never fired");
    Expect(sum.degraded > 0,
           "injected faults forced no degraded responses (vacuous run)");
    Expect(stats.decode_failures > 0,
           "decode-failure injection never landed");
    Expect(sum.over_bound == 0,
           std::to_string(sum.over_bound) + " response(s) over the " +
               std::to_string(bound_ms) + "ms latency bound (max " +
               std::to_string(sum.max_latency_ms) + "ms)");
  }

  if (g_failures > 0) {
    std::fprintf(stderr, "chaos_probe: FAIL (%d check(s))\n", g_failures);
    return 1;
  }
  std::printf("chaos_probe: PASS\n");
  return 0;
}

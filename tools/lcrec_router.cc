// Router process for the sharded serving cluster: speaks the same
// binary RPC protocol as a worker on its front port, shards each
// Recommend by user hash across the given workers, and fails over in
// ring order when a shard is down or draining. Per-shard health and
// counters are served at /statusz on the debug port ("net.router"
// section).
//
//   lcrec_router --workers=HOST:PORT[,HOST:PORT...]
//                [--port=N] [--port-file=PATH]
//                [--debug-port=N] [--debug-port-file=PATH]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/router.h"
#include "obs/debugz.h"
#include "obs/log.h"

namespace {

using namespace lcrec;

volatile std::sig_atomic_t g_shutdown = 0;

void OnSignal(int) { g_shutdown = 1; }

bool FlagValue(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

bool WritePortFile(const std::string& path, int port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%d\n", port);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(',', start);
    if (pos == std::string::npos) {
      if (start < text.size()) out.push_back(text.substr(start));
      return out;
    }
    if (pos > start) out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  net::RouterOptions opts;
  std::string port_file;
  int debug_port = -1;
  std::string debug_port_file;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (FlagValue(argv[i], "--workers", &v)) {
      opts.workers = SplitCommas(v);
    } else if (FlagValue(argv[i], "--port", &v)) {
      opts.server.port = std::atoi(v);
    } else if (FlagValue(argv[i], "--port-file", &v)) {
      port_file = v;
    } else if (FlagValue(argv[i], "--debug-port", &v)) {
      debug_port = std::atoi(v);
    } else if (FlagValue(argv[i], "--debug-port-file", &v)) {
      debug_port_file = v;
    } else {
      std::fprintf(stderr,
                   "usage: lcrec_router --workers=HOST:PORT[,...] "
                   "[--port=N] [--port-file=PATH] [--debug-port=N] "
                   "[--debug-port-file=PATH]\n");
      return 2;
    }
  }
  if (opts.workers.empty()) {
    std::fprintf(stderr, "lcrec_router: --workers is required\n");
    return 2;
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  net::Router router(opts);
  std::string error;
  if (!router.Start(&error)) {
    std::fprintf(stderr, "lcrec_router: start failed: %s\n", error.c_str());
    return 1;
  }

  if (debug_port >= 0) {
    obs::DebugServer& dbg = obs::DebugServer::Global();
    if (dbg.Start(debug_port, &error)) {
      if (!debug_port_file.empty()) WritePortFile(debug_port_file, dbg.port());
    } else {
      std::fprintf(stderr, "lcrec_router: debugz start failed: %s\n",
                   error.c_str());
    }
  }
  obs::RegisterStatuszSection("net.router",
                              [&router] { return router.StatuszText(); });

  if (!port_file.empty() && !WritePortFile(port_file, router.port())) {
    std::fprintf(stderr, "lcrec_router: cannot write port file %s\n",
                 port_file.c_str());
    return 1;
  }

  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  obs::Log(obs::LogLevel::kInfo, "[router] draining front listener");
  router.BeginDrain();
  const bool drained = router.WaitDrained(/*timeout_s=*/15.0);
  router.Stop();
  if (!drained) {
    std::fprintf(stderr, "lcrec_router: drain timed out\n");
    return 1;
  }
  std::printf("lcrec_router: drained clean\n");
  return 0;
}

// Model-worker process for the sharded serving cluster: one
// serve::Server (own cache, batch engine, degradation ladder) exposed
// over the binary RPC protocol by a net::RpcServer. lcrec_router shards
// user traffic across N of these.
//
//   lcrec_worker [--port=N] [--port-file=PATH] [--seed=N]
//                [--debug-port=N] [--debug-port-file=PATH]
//                [--dispatch-threads=N]
//
// The model is the same deterministic tiny system bench_serve and the
// probes build: every worker started with the same --seed holds
// bit-identical weights, so the router's answers are bit-identical to a
// direct in-process serve::Server::Recommend whichever shard serves
// them.
//
// Shutdown contract (the drain half of the router handoff): on SIGTERM
// the worker closes its listener first — the router re-resolves new
// requests to surviving shards — then finishes every queued and
// in-flight request and flushes the responses before exiting 0. Exits 1
// if the drain times out.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "llm/minillm.h"
#include "net/rpc.h"
#include "net/service.h"
#include "obs/debugz.h"
#include "obs/log.h"
#include "quant/indexing.h"
#include "serve/server.h"
#include "text/vocab.h"

namespace {

using namespace lcrec;

volatile std::sig_atomic_t g_shutdown = 0;

void OnSignal(int) { g_shutdown = 1; }

/// Same tiny deterministic system as bench_serve / chaos_probe: an
/// untrained MiniLlm over a seeded random item index.
struct System {
  text::Vocabulary vocab;
  quant::ItemIndexing indexing = quant::ItemIndexing::VanillaId(1);
  std::unique_ptr<quant::PrefixTrie> trie;
  std::unique_ptr<llm::MiniLlm> model;
  std::unique_ptr<llm::IndexTokenMap> token_map;

  explicit System(uint64_t seed) {
    core::Rng rng(seed);
    indexing = quant::ItemIndexing::Random(/*items=*/48, /*levels=*/3,
                                           /*codes=*/6, rng);
    trie = std::make_unique<quant::PrefixTrie>(indexing);
    for (const std::string& tok : indexing.AllTokenStrings()) {
      vocab.AddToken(tok);
    }
    llm::MiniLlmConfig cfg;
    cfg.vocab_size = vocab.size();
    cfg.d_model = 32;
    cfg.n_heads = 4;
    cfg.n_layers = 2;
    cfg.d_ff = 64;
    cfg.max_seq = 64;
    cfg.seed = 3;
    model = std::make_unique<llm::MiniLlm>(cfg);
    token_map = std::make_unique<llm::IndexTokenMap>(indexing, vocab);
  }

  serve::PromptBuilder Builder() const {
    int v = vocab.size();
    return [v](const std::vector<int>& history) {
      std::vector<int> prompt = {text::Vocabulary::kBos};
      for (int item : history) prompt.push_back(4 + (item % (v - 4)));
      return prompt;
    };
  }
};

bool FlagValue(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

/// Writes "<port>\n" atomically (tmp + rename) so a polling launcher
/// never reads a half-written file.
bool WritePortFile(const std::string& path, int port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%d\n", port);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  std::string port_file;
  uint64_t seed = 7;
  int debug_port = -1;
  std::string debug_port_file;
  int dispatch_threads = 8;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (FlagValue(argv[i], "--port", &v)) {
      port = std::atoi(v);
    } else if (FlagValue(argv[i], "--port-file", &v)) {
      port_file = v;
    } else if (FlagValue(argv[i], "--seed", &v)) {
      seed = static_cast<uint64_t>(std::atoll(v));
    } else if (FlagValue(argv[i], "--debug-port", &v)) {
      debug_port = std::atoi(v);
    } else if (FlagValue(argv[i], "--debug-port-file", &v)) {
      debug_port_file = v;
    } else if (FlagValue(argv[i], "--dispatch-threads", &v)) {
      dispatch_threads = std::atoi(v);
    } else {
      std::fprintf(stderr,
                   "usage: lcrec_worker [--port=N] [--port-file=PATH] "
                   "[--seed=N] [--debug-port=N] [--debug-port-file=PATH] "
                   "[--dispatch-threads=N]\n");
      return 2;
    }
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  System system(seed);
  serve::ServerOptions sopts;
  sopts.beam_size = 4;
  sopts.slow_request_ms = 0.0;
  serve::Server server(*system.model, *system.trie, *system.token_map,
                       system.Builder(), sopts);

  net::RpcServerOptions ropts;
  ropts.port = port;
  ropts.dispatch_threads = dispatch_threads;
  net::RpcServer rpc(ropts);
  net::RegisterRecommendService(&rpc, &server);
  std::string error;
  if (!rpc.Start(&error)) {
    std::fprintf(stderr, "lcrec_worker: rpc start failed: %s\n",
                 error.c_str());
    return 1;
  }

  if (debug_port >= 0) {
    obs::DebugServer& dbg = obs::DebugServer::Global();
    if (dbg.Start(debug_port, &error)) {
      if (!debug_port_file.empty()) WritePortFile(debug_port_file, dbg.port());
    } else {
      std::fprintf(stderr, "lcrec_worker: debugz start failed: %s\n",
                   error.c_str());
    }
  }
  obs::RegisterStatuszSection("net.rpc",
                              [&rpc] { return rpc.StatuszText(); });

  if (!port_file.empty() && !WritePortFile(port_file, rpc.port())) {
    std::fprintf(stderr, "lcrec_worker: cannot write port file %s\n",
                 port_file.c_str());
    return 1;
  }
  obs::Log(obs::LogLevel::kInfo,
           "[worker] serving on port %d (seed %llu, debugz %d)", rpc.port(),
           static_cast<unsigned long long>(seed),
           debug_port >= 0 ? obs::DebugServer::Global().port() : -1);

  while (g_shutdown == 0 && rpc.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  obs::Log(obs::LogLevel::kInfo, "[worker] draining");
  rpc.BeginDrain();
  const bool drained = rpc.WaitDrained(/*timeout_s=*/15.0);
  rpc.Stop();
  server.Stop();
  if (!drained) {
    std::fprintf(stderr, "lcrec_worker: drain timed out\n");
    return 1;
  }
  std::printf("lcrec_worker: drained clean\n");
  return 0;
}

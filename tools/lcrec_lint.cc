// lcrec_lint: from-scratch repo lint for the invariants that a compiler
// will not enforce. Zero dependencies beyond the C++ standard library.
//
// Walks src/, tests/, and bench/ under --root and reports findings as
// "file:line: [rule] message" on stdout; exit code 1 when any finding
// survives. Rules (scopes in parentheses):
//
//   bare-assert            (src/)   assert() instead of LCREC_CHECK*.
//                                   static_assert is fine; so is the
//                                   check framework itself.
//   raw-stderr             (src/ minus src/obs/)  fprintf(stderr, ...)
//                                   or printf(...): library code must
//                                   route diagnostics through obs
//                                   logging. Bench/test binaries print
//                                   reports, so they are exempt.
//   std-rand               (all)    std::rand/srand: all randomness
//                                   goes through core::Rng so runs are
//                                   reproducible.
//   include-guard          (all .h) guard macro must be LCREC_<PATH>_H_
//                                   with the leading src/ dropped
//                                   (e.g. src/core/tensor.h ->
//                                   LCREC_CORE_TENSOR_H_).
//   using-namespace-header (all .h) `using namespace` in a header leaks
//                                   into every includer.
//   ckpt-bypass            (src/ minus src/ckpt/)  opening a
//                                   std::ofstream in binary mode: model
//                                   state must be written through the
//                                   atomic, checksummed lcrec::ckpt
//                                   writers (or core/serialize.cc, which
//                                   carries an explicit lint:allow), not
//                                   ad-hoc streams that can tear on
//                                   crash.
//   raw-thread             (src/ minus src/serve/, src/net/ and
//                                   src/obs/) spawning std::thread: all
//                                   concurrency lives in the serving
//                                   and networking layers (and obs test
//                                   scaffolding); the model/training
//                                   core stays single-threaded by
//                                   design.
//                                   std::thread::hardware_concurrency()
//                                   queries are exempt.
//   raw-socket             (all minus src/obs/http* and src/net/)
//                                   calling the POSIX socket API
//                                   (socket/bind/listen/accept/connect):
//                                   all networking funnels through the
//                                   two audited event loops,
//                                   obs::HttpServer/HttpGet and
//                                   net::RpcServer/RpcClient.
//   metric-name            (src/)   a string-literal metric name passed
//                                   to GetCounter/GetGauge/GetHistogram
//                                   must match lcrec\.[a-z0-9_.]+ so the
//                                   exported namespace stays uniform
//                                   (tests/bench may use scratch names;
//                                   non-literal names are not checked).
//   chaos-site             (src/)   getenv of an LCREC_CHAOS* variable
//                                   outside src/serve/chaos.*: the env
//                                   contract (grammar, seeding, lazy
//                                   parse) has exactly one owner, the
//                                   chaos injector; everything else
//                                   consults serve::chaos hooks.
//   raw-sync               (src/ minus src/obs/sync.*)  std::mutex,
//                                   lock_guard, unique_lock,
//                                   condition_variable and friends:
//                                   every lock in the tree must be an
//                                   obs::Mutex so it is named, ranked,
//                                   deadlock-checked, and accounted;
//                                   src/obs/sync.h is the one wrapper
//                                   over the std primitives.
//   module-layering        (src/)   an #include from module A into
//                                   module B where tools/layers.txt
//                                   puts B at the same or a higher
//                                   layer than A. "allow A B" lines in
//                                   the map whitelist deliberate upward
//                                   edges (core -> obs for the abort
//                                   path). tests/bench/tools sit on top
//                                   and may include anything.
//   include-cycle          (all)    the project include graph must stay
//                                   acyclic; every #include line that
//                                   sits on a cycle is reported with
//                                   the cycle's membership.
//
// Scanning is comment- and string-aware: rule patterns inside comments
// or string literals never fire. A finding on a line whose raw text
// contains `lint:allow(<rule>)` (necessarily inside a comment) is
// suppressed.
//
// --selftest runs the same walker over tools/lint_fixtures/, whose
// files annotate each intended violation with `// expect-lint: <rule>`,
// and verifies the findings match the annotations exactly — both
// missed violations and spurious findings fail the selftest.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;  // path relative to the scanned root
  int line = 0;
  std::string rule;
  std::string message;
};

// --- Comment/string stripping ---------------------------------------------

/// Strips // and /* */ comments and the contents of string/char literals
/// from `text`, preserving line structure (every '\n' survives) so line
/// numbers in findings stay exact. Literal delimiters are kept so code
/// shape is preserved; raw strings R"(...)" are handled.
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          size_t paren = text.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + text.substr(i + 2, paren - i - 2) + "\"";
            state = State::kRawString;
            out += "\"";
            i = paren;
          } else {
            out += c;
          }
        } else if (c == '"') {
          state = State::kString;
          out += c;
        } else if (c == '\'') {
          state = State::kChar;
          out += c;
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += c;
        } else if (c == '\n') {
          out += c;  // unterminated; keep line structure
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += c;
        } else if (c == '\n') {
          out += c;
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          out += "\"";
          state = State::kCode;
        } else if (c == '\n') {
          out += c;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True if `needle` occurs in `line` as a whole word (not preceded or
/// followed by an identifier character).
bool ContainsWord(const std::string& line, const std::string& needle) {
  size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    size_t end = pos + needle.size();
    bool right_ok = end >= line.size() || !IsWordChar(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// Matches `name` followed by optional whitespace and '('.
bool ContainsCall(const std::string& line, const std::string& name) {
  size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    size_t end = pos + name.size();
    while (end < line.size() &&
           std::isspace(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    if (left_ok && end < line.size() && line[end] == '(') return true;
    pos += name.size();
  }
  return false;
}

/// Matches a call to the POSIX socket-API function `name`: `name(` or
/// the global-qualified `::name(`, but not member calls (`sock.bind(`,
/// `server->connect(`) or other-namespace qualifications (`std::bind(`),
/// which are unrelated to the socket API.
bool ContainsSocketCall(const std::string& line, const std::string& name) {
  size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    size_t end = pos + name.size();
    size_t paren = end;
    while (paren < line.size() &&
           std::isspace(static_cast<unsigned char>(line[paren]))) {
      ++paren;
    }
    bool is_call = paren < line.size() && line[paren] == '(' &&
                   (end >= line.size() || !IsWordChar(line[end]));
    if (!is_call) {
      pos = end;
      continue;
    }
    if (pos > 0) {
      char left = line[pos - 1];
      if (IsWordChar(left) || left == '.' || left == '>') {
        pos = end;
        continue;
      }
      if (left == ':') {
        // Qualified: only the global `::name(` form is the socket API.
        bool global_qualified = pos >= 2 && line[pos - 2] == ':' &&
                                (pos == 2 || !IsWordChar(line[pos - 3]));
        if (!global_qualified) {
          pos = end;
          continue;
        }
      }
    }
    return true;
  }
  return false;
}

/// Finds a std:: synchronization primitive on the line. Tokens are
/// matched with a left word boundary only, so std::condition_variable
/// also catches std::condition_variable_any; the full identifier is
/// returned through `which` for the finding message.
bool ContainsStdSync(const std::string& line, std::string* which) {
  static const char* kTokens[] = {
      "mutex",       "recursive_mutex", "timed_mutex",
      "shared_mutex", "lock_guard",     "scoped_lock",
      "unique_lock", "shared_lock",     "condition_variable"};
  for (const char* tok : kTokens) {
    std::string needle = std::string("std::") + tok;
    size_t pos = 0;
    while ((pos = line.find(needle, pos)) != std::string::npos) {
      if (pos == 0 || !IsWordChar(line[pos - 1])) {
        size_t end = pos + needle.size();
        while (end < line.size() && IsWordChar(line[end])) ++end;
        *which = line.substr(pos, end - pos);
        return true;
      }
      pos += needle.size();
    }
  }
  return false;
}

/// True when `name` matches lcrec\.[a-z0-9_.]+ in full: the "lcrec."
/// namespace prefix followed only by lowercase dotted words. A trailing
/// dot is fine (prefixes completed by runtime concatenation).
bool ValidMetricName(const std::string& name) {
  const std::string prefix = "lcrec.";
  if (name.size() <= prefix.size() || name.rfind(prefix, 0) != 0) {
    return false;
  }
  for (size_t i = prefix.size(); i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
              c == '.';
    if (!ok) return false;
  }
  return true;
}

// --- Rules -----------------------------------------------------------------

std::string ExpectedGuard(const std::string& rel_path) {
  std::string p = rel_path;
  if (p.rfind("src/", 0) == 0) p = p.substr(4);
  std::string guard = "LCREC_";
  for (char c : p) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

void LintFile(const std::string& rel_path, const std::string& text,
              std::vector<Finding>* findings) {
  const bool is_header = rel_path.size() > 2 &&
                         rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
  const bool in_src = StartsWith(rel_path, "src/");
  const bool in_obs = StartsWith(rel_path, "src/obs/");
  const bool in_ckpt = StartsWith(rel_path, "src/ckpt/");
  const bool in_serve = StartsWith(rel_path, "src/serve/");
  const bool in_http = StartsWith(rel_path, "src/obs/http");
  const bool in_net = StartsWith(rel_path, "src/net/");

  std::vector<std::string> raw_lines = SplitLines(text);
  std::vector<std::string> code_lines =
      SplitLines(StripCommentsAndStrings(text));

  auto suppressed = [&raw_lines](int line_no, const std::string& rule) {
    const std::string& raw = raw_lines[static_cast<size_t>(line_no) - 1];
    return raw.find("lint:allow(" + rule + ")") != std::string::npos;
  };
  auto add = [&](int line_no, const std::string& rule,
                 const std::string& message) {
    if (suppressed(line_no, rule)) return;
    findings->push_back({rel_path, line_no, rule, message});
  };

  std::string first_guard;
  int first_guard_line = 0;
  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& line = code_lines[i];
    int line_no = static_cast<int>(i) + 1;

    if (in_src && ContainsCall(line, "assert") &&
        !ContainsWord(line, "static_assert")) {
      add(line_no, "bare-assert",
          "use LCREC_CHECK*/LCREC_DCHECK* (core/check.h) instead of "
          "assert()");
    }
    if (in_src && !in_obs) {
      bool fprintf_stderr = false;
      size_t pos = line.find("fprintf");
      while (pos != std::string::npos) {
        size_t rest = line.find("stderr", pos);
        if ((pos == 0 || !IsWordChar(line[pos - 1])) &&
            rest != std::string::npos && rest - pos < 16) {
          fprintf_stderr = true;
          break;
        }
        pos = line.find("fprintf", pos + 1);
      }
      if (fprintf_stderr) {
        add(line_no, "raw-stderr",
            "use obs logging (obs/log.h) instead of fprintf(stderr, ...)");
      }
      if (ContainsCall(line, "printf")) {
        add(line_no, "raw-stderr",
            "library code must not printf; use obs logging or return data");
      }
    }
    if (in_src && !in_ckpt && ContainsWord(line, "ofstream") &&
        ContainsWord(line, "binary")) {
      add(line_no, "ckpt-bypass",
          "binary state writes must go through lcrec::ckpt (atomic + "
          "CRC32) or core/serialize.cc, not a raw std::ofstream");
    }
    if (in_src && !in_serve && !in_obs && !in_net &&
        ContainsWord(line, "std::thread") &&
        line.find("hardware_concurrency") == std::string::npos) {
      add(line_no, "raw-thread",
          "threads belong in src/serve/ (scheduler), src/net/ (RPC event "
          "loop), or src/obs/ (test scaffolding); the model/training core "
          "is single-threaded by design");
    }
    if (in_src && !StartsWith(rel_path, "src/obs/sync.")) {
      std::string which;
      if (ContainsStdSync(line, &which)) {
        add(line_no, "raw-sync",
            which + " outside src/obs/sync.h — use obs::Mutex / MutexLock "
                    "/ UniqueLock / CondVar (obs/sync.h) so every lock is "
                    "named, ranked, deadlock-checked, and accounted");
      }
    }
    if (in_src) {
      // The stripped line proves there is a real call (not a comment or
      // string mention); the literal itself must be read from the raw
      // line, since stripping drops string contents.
      static const char* kMetricGetters[] = {"GetCounter", "GetGauge",
                                             "GetHistogram"};
      for (const char* getter : kMetricGetters) {
        if (!ContainsCall(line, getter)) continue;
        const std::string& raw = raw_lines[i];
        size_t cpos = raw.find(getter);
        if (cpos == std::string::npos) continue;
        size_t q0 = raw.find('"', cpos);
        if (q0 == std::string::npos) continue;  // non-literal name: skip
        size_t q1 = raw.find('"', q0 + 1);
        if (q1 == std::string::npos) continue;
        std::string name = raw.substr(q0 + 1, q1 - q0 - 1);
        if (!ValidMetricName(name)) {
          add(line_no, "metric-name",
              "metric name \"" + name +
                  "\" must match lcrec\\.[a-z0-9_.]+ (the exported "
                  "namespace is uniform by construction)");
        }
      }
    }
    if (in_src && !StartsWith(rel_path, "src/serve/chaos.") &&
        ContainsCall(line, "getenv")) {
      // Same two-step as metric-name: the stripped line proves a real
      // getenv call; the variable name is read from the raw line.
      const std::string& raw = raw_lines[i];
      size_t cpos = raw.find("getenv");
      size_t q0 = cpos == std::string::npos ? std::string::npos
                                            : raw.find('"', cpos);
      size_t q1 = q0 == std::string::npos ? std::string::npos
                                          : raw.find('"', q0 + 1);
      if (q1 != std::string::npos) {
        std::string var = raw.substr(q0 + 1, q1 - q0 - 1);
        if (StartsWith(var, "LCREC_CHAOS")) {
          add(line_no, "chaos-site",
              "getenv(\"" + var +
                  "\") outside src/serve/chaos.* — the chaos env contract "
                  "has one owner; use the serve::chaos hooks "
                  "(ArmChaosFromEnv / OnDecode / OnQueueAdmit) instead of "
                  "re-reading the env");
        }
      }
    }
    if (!in_http && !in_net) {
      static const char* kSocketCalls[] = {"socket", "bind", "listen",
                                           "accept", "connect"};
      for (const char* call : kSocketCalls) {
        if (ContainsSocketCall(line, call)) {
          add(line_no, "raw-socket",
              std::string(call) +
                  "() outside src/obs/http and src/net — all networking "
                  "funnels through the two audited event loops "
                  "(obs::HttpServer / obs::HttpGet and net::RpcServer / "
                  "net::RpcClient)");
          break;  // one finding per line even when several names match
        }
      }
    }
    if (ContainsWord(line, "std::rand") || ContainsCall(line, "srand")) {
      add(line_no, "std-rand",
          "use core::Rng (core/rng.h); std::rand/srand break "
          "reproducibility");
    }
    if (is_header && line.find("using namespace") != std::string::npos) {
      add(line_no, "using-namespace-header",
          "`using namespace` in a header leaks into every includer");
    }
    if (is_header && first_guard.empty()) {
      size_t pos = line.find("#ifndef");
      if (pos != std::string::npos) {
        std::istringstream is(line.substr(pos + 7));
        is >> first_guard;
        first_guard_line = line_no;
      }
    }
  }

  if (is_header) {
    std::string expected = ExpectedGuard(rel_path);
    if (first_guard.empty()) {
      add(1, "include-guard", "missing include guard " + expected);
    } else if (first_guard != expected) {
      add(first_guard_line, "include-guard",
          "guard is " + first_guard + ", expected " + expected);
    }
  }
}

// --- Include graph: layering + cycles --------------------------------------

/// One `#include "..."` directive. `raw` keeps the raw line text so the
/// post-passes can honor lint:allow(<rule>) suppressions.
struct IncludeRef {
  std::string file;  // includer, relative to the scanned root
  int line = 0;
  std::string path;  // the quoted path as written
  std::string raw;
};

/// Collects project includes (quoted form only; <system> headers are
/// not part of the layering contract). The directive is confirmed on
/// the stripped line — a "#include" inside a comment or string never
/// counts — but the path itself must be read from the raw line, since
/// stripping empties string-literal contents and the include path is
/// lexed as a string literal.
void CollectIncludes(const std::string& rel_path, const std::string& text,
                     std::vector<IncludeRef>* out) {
  std::vector<std::string> raw_lines = SplitLines(text);
  std::vector<std::string> code_lines =
      SplitLines(StripCommentsAndStrings(text));
  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& code = code_lines[i];
    size_t h = code.find("#include");
    if (h == std::string::npos) continue;
    bool directive = true;
    for (size_t j = 0; j < h; ++j) {
      if (!std::isspace(static_cast<unsigned char>(code[j]))) {
        directive = false;
        break;
      }
    }
    if (!directive || code.find('"', h) == std::string::npos) continue;
    const std::string& raw = raw_lines[i];
    size_t q0 = raw.find('"', h);
    if (q0 == std::string::npos) continue;
    size_t q1 = raw.find('"', q0 + 1);
    if (q1 == std::string::npos) continue;
    out->push_back({rel_path, static_cast<int>(i) + 1,
                    raw.substr(q0 + 1, q1 - q0 - 1), raw});
  }
}

/// The committed module layer map (tools/layers.txt): "<module> <layer>"
/// lines order the src/ modules bottom-up; "allow <from> <to>" lines
/// whitelist deliberate upward edges. '#' starts a comment.
struct LayerMap {
  bool loaded = false;
  std::map<std::string, int> layer;
  std::set<std::pair<std::string, std::string>> allow;
};

LayerMap LoadLayerMap(const fs::path& file) {
  LayerMap m;
  std::ifstream in(file);
  if (!in) return m;
  m.loaded = true;
  std::string line;
  while (std::getline(in, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream is(line);
    std::string a, b;
    if (!(is >> a)) continue;
    if (a == "allow") {
      std::string c;
      if (is >> b >> c) m.allow.insert({b, c});
    } else if (is >> b) {
      m.layer[a] = std::atoi(b.c_str());
    }
  }
  return m;
}

/// "src/<module>/..." -> module name; anything else (tests/, bench/,
/// files directly under src/) -> "".
std::string ModuleOf(const std::string& rel_path) {
  if (!StartsWith(rel_path, "src/")) return "";
  size_t slash = rel_path.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel_path.substr(4, slash - 4);
}

/// First path component of an include path ("serve/queue.h" -> "serve").
std::string IncludeModule(const std::string& path) {
  size_t slash = path.find('/');
  if (slash == std::string::npos) return "";
  return path.substr(0, slash);
}

bool RawSuppressed(const IncludeRef& inc, const std::string& rule) {
  return inc.raw.find("lint:allow(" + rule + ")") != std::string::npos;
}

/// module-layering: a src/ file may include its own module and any
/// strictly lower layer. Equal layers have no declared order between
/// modules — same refusal as equal mutex ranks — so they are back-edges
/// too unless the map allows the pair.
void LintLayering(const LayerMap& layers,
                  const std::vector<IncludeRef>& includes,
                  std::vector<Finding>* findings) {
  if (!layers.loaded) return;
  for (const IncludeRef& inc : includes) {
    std::string from = ModuleOf(inc.file);
    std::string to = IncludeModule(inc.path);
    if (from.empty() || to.empty() || from == to) continue;
    auto fit = layers.layer.find(from);
    auto tit = layers.layer.find(to);
    if (fit == layers.layer.end() || tit == layers.layer.end()) continue;
    if (tit->second < fit->second) continue;
    if (layers.allow.count({from, to})) continue;
    if (RawSuppressed(inc, "module-layering")) continue;
    findings->push_back(
        {inc.file, inc.line, "module-layering",
         "#include \"" + inc.path + "\" is a layering back-edge: src/" +
             from + " (layer " + std::to_string(fit->second) +
             ") must not reach src/" + to + " (layer " +
             std::to_string(tit->second) +
             "); the map is tools/layers.txt"});
  }
}

/// include-cycle: Tarjan SCC over the resolved project include graph.
/// Every #include directive whose edge stays inside a nontrivial SCC is
/// reported, so each participating line of the cycle gets a finding.
void LintIncludeCycles(const std::vector<std::string>& files,
                       const std::vector<IncludeRef>& includes,
                       std::vector<Finding>* findings) {
  std::set<std::string> file_set(files.begin(), files.end());
  // Repo includes are rooted at src/ (headers) or the repo root (tests
  // and bench reaching into src the same way, via include dirs).
  auto resolve = [&file_set](const std::string& path) -> std::string {
    std::string in_src = "src/" + path;
    if (file_set.count(in_src)) return in_src;
    if (file_set.count(path)) return path;
    return "";
  };

  std::map<std::string, std::vector<std::string>> adj;
  for (const IncludeRef& inc : includes) {
    std::string to = resolve(inc.path);
    if (!to.empty() && to != inc.file) adj[inc.file].push_back(to);
  }

  std::map<std::string, int> index, low, comp;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  std::map<int, std::vector<std::string>> members;
  int next_index = 0, next_comp = 0;

  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack.insert(v);
        auto it = adj.find(v);
        if (it != adj.end()) {
          for (const std::string& w : it->second) {
            if (!index.count(w)) {
              strongconnect(w);
              low[v] = std::min(low[v], low[w]);
            } else if (on_stack.count(w)) {
              low[v] = std::min(low[v], index[w]);
            }
          }
        }
        if (low[v] == index[v]) {
          int c = next_comp++;
          for (;;) {
            std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            comp[w] = c;
            members[c].push_back(w);
            if (w == v) break;
          }
        }
      };
  for (const std::string& f : files) {
    if (!index.count(f)) strongconnect(f);
  }

  for (const IncludeRef& inc : includes) {
    std::string to = resolve(inc.path);
    if (to.empty() || to == inc.file) continue;
    int c = comp[inc.file];
    if (c != comp[to] || members[c].size() < 2) continue;
    if (RawSuppressed(inc, "include-cycle")) continue;
    std::vector<std::string> cycle = members[c];
    std::sort(cycle.begin(), cycle.end());
    std::string joined;
    for (const std::string& m : cycle) {
      if (!joined.empty()) joined += ", ";
      joined += m;
    }
    findings->push_back({inc.file, inc.line, "include-cycle",
                         "#include \"" + inc.path +
                             "\" closes a header include cycle among: " +
                             joined});
  }
}

// --- Walking ---------------------------------------------------------------

bool IsSourceFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

std::vector<Finding> LintTree(const fs::path& root,
                              const std::vector<std::string>& subdirs) {
  std::vector<Finding> findings;
  std::vector<std::string> files;
  for (const std::string& sub : subdirs) {
    fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        files.push_back(fs::relative(entry.path(), root).generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<IncludeRef> includes;
  for (const std::string& rel : files) {
    std::ifstream in(root / rel, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    LintFile(rel, buf.str(), &findings);
    CollectIncludes(rel, buf.str(), &includes);
  }
  LintLayering(LoadLayerMap(root / "tools" / "layers.txt"), includes,
               &findings);
  LintIncludeCycles(files, includes, &findings);
  return findings;
}

// --- Selftest --------------------------------------------------------------

/// Expected findings from `// expect-lint: <rule>` annotations in the
/// fixture tree. One annotation marks one violation on its own line.
std::vector<Finding> ExpectedFindings(const fs::path& root,
                                      const std::vector<std::string>& subdirs) {
  std::vector<Finding> expected;
  std::vector<std::string> files;
  for (const std::string& sub : subdirs) {
    fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        files.push_back(fs::relative(entry.path(), root).generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& rel : files) {
    std::ifstream in(root / rel, std::ios::binary);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      size_t pos = line.find("expect-lint:");
      if (pos == std::string::npos) continue;
      std::istringstream is(line.substr(pos + 12));
      std::string rule;
      while (is >> rule) {
        expected.push_back({rel, line_no, rule, ""});
      }
    }
  }
  return expected;
}

bool SameFinding(const Finding& a, const Finding& b) {
  return a.file == b.file && a.line == b.line && a.rule == b.rule;
}

int RunSelftest(const fs::path& fixtures) {
  const std::vector<std::string> subdirs = {"src", "tests", "bench"};
  std::vector<Finding> got = LintTree(fixtures, subdirs);
  std::vector<Finding> want = ExpectedFindings(fixtures, subdirs);
  auto key = [](const Finding& f) {
    return f.file + ":" + std::to_string(f.line) + ":" + f.rule;
  };
  auto by_key = [&key](const Finding& a, const Finding& b) {
    return key(a) < key(b);
  };
  std::sort(got.begin(), got.end(), by_key);
  std::sort(want.begin(), want.end(), by_key);

  int failures = 0;
  for (const Finding& w : want) {
    bool hit = std::any_of(got.begin(), got.end(), [&](const Finding& g) {
      return SameFinding(g, w);
    });
    if (!hit) {
      std::printf("selftest MISS: expected %s:%d [%s] was not reported\n",
                  w.file.c_str(), w.line, w.rule.c_str());
      ++failures;
    }
  }
  for (const Finding& g : got) {
    bool hit = std::any_of(want.begin(), want.end(), [&](const Finding& w) {
      return SameFinding(g, w);
    });
    if (!hit) {
      std::printf("selftest SPURIOUS: %s:%d [%s] %s\n", g.file.c_str(),
                  g.line, g.rule.c_str(), g.message.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("lcrec_lint selftest: OK (%zu expected findings, all "
                "matched, none spurious)\n",
                want.size());
    return 0;
  }
  std::printf("lcrec_lint selftest: FAILED (%d mismatches)\n", failures);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool selftest = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--selftest") {
      selftest = true;
    } else {
      std::printf("usage: lcrec_lint [--root DIR] [--selftest]\n");
      return 2;
    }
  }

  if (selftest) return RunSelftest(root / "tools" / "lint_fixtures");

  std::vector<Finding> findings = LintTree(root, {"src", "tests", "bench"});
  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (findings.empty()) {
    std::printf("lcrec_lint: OK (0 findings)\n");
    return 0;
  }
  std::printf("lcrec_lint: %zu finding(s)\n", findings.size());
  return 1;
}

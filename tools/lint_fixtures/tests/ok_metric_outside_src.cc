// Fixture: the metric-name rule is scoped to src/ — test code uses
// scratch metric names (test.*, lcrec.promtest.*) on purpose and must
// stay quiet. Never compiled, only scanned.

namespace lcrec::fixture {

struct FakeRegistry {
  int GetCounter(const char*) { return 0; }
};

void TestMetrics(FakeRegistry& r) {
  r.GetCounter("test.obs.counter");      // outside src/: quiet
  r.GetCounter("lcrec.promtest.UPPER");  // outside src/: quiet
}

}  // namespace lcrec::fixture

// Fixture: assert() and printf are allowed outside src/ (tests and
// bench binaries print reports); std::rand is not allowed anywhere.
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace lcrec::fixture {

void TestBody(int x) {
  assert(x >= 0);  // fine: not under src/
  std::printf("x = %d\n", x);  // fine: not under src/
  int y = std::rand();  // expect-lint: std-rand
  (void)y;
}

}  // namespace lcrec::fixture

// Fixture: src/ckpt/ implements the atomic checkpoint writer, so binary
// std::ofstream use is allowed here. Never compiled, only scanned.
#include <fstream>

namespace lcrec::fixture {

void WriteTemp(const char* path) {
  std::ofstream os(path, std::ios::binary);
  os << 3;
}

}  // namespace lcrec::fixture

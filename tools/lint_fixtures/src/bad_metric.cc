// Fixture: string-literal metric names in library code must live in the
// uniform lcrec.* namespace (lcrec\.[a-z0-9_.]+). Scratch names, wrong
// prefixes, and uppercase must be flagged; prefix concatenation with a
// trailing dot, non-literal names, and suppressed lines must not.
// Never compiled, only scanned.

namespace lcrec::fixture {

struct FakeRegistry {
  int GetCounter(const char*) { return 0; }
  int GetGauge(const char*) { return 0; }
  int GetHistogram(const char*) { return 0; }
};

void Metrics(FakeRegistry& r, const char* dynamic_name) {
  r.GetCounter("my_counter");  // expect-lint: metric-name
  r.GetGauge("lcrec.Serve.QueueDepth");  // expect-lint: metric-name
  r.GetHistogram("lcrec-serve-latency");  // expect-lint: metric-name
  r.GetCounter("lcrec.");  // expect-lint: metric-name
  r.GetCounter("scratch.count");  // lint:allow(metric-name)

  r.GetCounter("lcrec.serve.requests");      // conforming: quiet
  r.GetGauge("lcrec.llm.train.loss.");       // prefix concat: quiet
  r.GetHistogram("lcrec.serve.latency_ms");  // conforming: quiet
  r.GetCounter(dynamic_name);                // non-literal: quiet
}

}  // namespace lcrec::fixture

// Fixture: this file is NOT exempt (only src/serve/chaos.* is), so the
// rule must still fire inside src/serve/ when the file is not the
// injector itself. Never compiled, only scanned.

namespace lcrec::fixture {

const char* ServeButNotChaosModule() {
  return std::getenv("LCREC_CHAOS");  // expect-lint: chaos-site
}

}  // namespace lcrec::fixture

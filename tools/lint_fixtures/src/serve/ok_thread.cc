// Fixture: src/serve/ is the blessed home for threads — the scheduler
// thread and client-facing concurrency live here, so std::thread must
// NOT be flagged. Never compiled, only scanned.
#include <thread>

void StartScheduler() {
  std::thread scheduler([] {});
  scheduler.join();
}

// Fixture: the chaos injector itself owns the LCREC_CHAOS contract, so
// the src/serve/chaos.* prefix is exempt from the chaos-site rule.
// Never compiled, only scanned.

namespace lcrec::fixture {

const char* InjectorOwnsTheEnv() {
  return std::getenv("LCREC_CHAOS");  // exempt prefix: quiet
}

const char* InjectorOwnsTheSeedToo() {
  return std::getenv("LCREC_CHAOS_SEED");  // exempt prefix: quiet
}

}  // namespace lcrec::fixture

// Fixture: the LCREC_CHAOS env contract (grammar, seed, lazy parse) is
// owned by src/serve/chaos.*; any other src/ file reading the variable
// directly forks the contract. Other env variables, comment mentions,
// and suppressed lines must stay quiet. Never compiled, only scanned.

namespace lcrec::fixture {

const char* ReadChaosEnv() {
  return std::getenv("LCREC_CHAOS");  // expect-lint: chaos-site
}

const char* ReadChaosSeed() {
  return std::getenv("LCREC_CHAOS_SEED");  // expect-lint: chaos-site
}

const char* SuppressedRead() {
  return std::getenv("LCREC_CHAOS");  // lint:allow(chaos-site)
}

const char* OtherEnv() {
  return std::getenv("LCREC_DEBUG_PORT");  // unrelated env: quiet
}

// A comment mentioning std::getenv("LCREC_CHAOS") is not a call: quiet.

}  // namespace lcrec::fixture

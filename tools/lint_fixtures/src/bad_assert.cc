// Fixture: bare assert() in library code must be flagged; static_assert
// and suppressed sites must not. Never compiled, only scanned.
#include <cassert>

namespace lcrec::fixture {

static_assert(sizeof(int) >= 4, "static_assert is fine");

int Clamp(int x) {
  assert(x >= 0);  // expect-lint: bare-assert
  assert(x < 100);  // lint:allow(bare-assert)
  // A comment mentioning assert(x) must not fire.
  const char* s = "assert(x) in a string must not fire";
  (void)s;
  return x;
}

}  // namespace lcrec::fixture

// Fixture: raw std::thread in core library code must be flagged — all
// concurrency lives in src/serve/ and src/obs/. Never compiled, only
// scanned.
#include <thread>

void SpawnWorker() {
  std::thread t([] {});  // expect-lint: raw-thread
  t.join();
}

void SpawnBlessed() {
  std::thread t([] {});  // lint:allow(raw-thread)
  t.join();
}

unsigned CoreCount() {
  // Querying the core count does not spawn anything; exempt.
  return std::thread::hardware_concurrency();
}

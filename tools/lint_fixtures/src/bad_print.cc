// Fixture: raw stderr/stdout printing in library code (outside src/obs/)
// must be flagged. Never compiled, only scanned.
#include <cstdio>

namespace lcrec::fixture {

void Report(int n) {
  std::fprintf(stderr, "n = %d\n", n);  // expect-lint: raw-stderr
  std::printf("n = %d\n", n);  // expect-lint: raw-stderr
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", n);  // snprintf is fine
  (void)buf;
}

}  // namespace lcrec::fixture

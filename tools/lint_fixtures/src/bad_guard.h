#ifndef LCREC_WRONG_NAME_H_  // expect-lint: include-guard
#define LCREC_WRONG_NAME_H_

namespace lcrec::fixture {
inline int One() { return 1; }
}  // namespace lcrec::fixture

#endif  // LCREC_WRONG_NAME_H_

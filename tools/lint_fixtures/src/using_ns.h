#ifndef LCREC_USING_NS_H_
#define LCREC_USING_NS_H_

#include <vector>

using namespace std;  // expect-lint: using-namespace-header

namespace lcrec::fixture {
inline int Two() { return 2; }
}  // namespace lcrec::fixture

#endif  // LCREC_USING_NS_H_

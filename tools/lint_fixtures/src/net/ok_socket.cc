// Fixture: src/net/ is the second blessed home of the socket API (the
// binary RPC event loop) and may spawn its own threads — none of these
// must be flagged. Including serve/ is a downward edge (net layer 7 ->
// serve layer 6), so the layering rule stays quiet too. Never compiled,
// only scanned.

#include "serve/request.h"

void BlessedRpcSetup() {
  int fd = ::socket(2, 1, 0);
  ::bind(fd, nullptr, 0);
  ::listen(fd, 16);
  ::accept(fd, nullptr, nullptr);
  ::connect(fd, nullptr, 0);
}

void BlessedDispatcherPool() {
  std::thread loop([] {});
  loop.join();
}

// Fixture: the net exemption is scoped, not a free-for-all — net (layer
// 7) must not reach sideways into baselines (also layer 7; equal layers
// have no declared order), and the thread/socket allowances do not
// extend to std::mutex. Never compiled, only scanned.

#include "baselines/pop.h"  // expect-lint: module-layering

void StillRanked() {
  std::mutex mu;  // expect-lint: raw-sync
  (void)mu;
}

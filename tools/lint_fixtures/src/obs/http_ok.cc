// Fixture: src/obs/http* is the one blessed home of the socket API —
// these calls must NOT be flagged. Never compiled, only scanned.

void BlessedServerSetup() {
  int fd = ::socket(2, 1, 0);
  ::bind(fd, nullptr, 0);
  ::listen(fd, 16);
  ::accept(fd, nullptr, nullptr);
  ::connect(fd, nullptr, 0);
}

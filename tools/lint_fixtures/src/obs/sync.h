// Exemption fixture: src/obs/sync.* is the one place allowed to touch
// the std synchronization primitives it wraps, so nothing here carries
// an expect-lint annotation.
#ifndef LCREC_OBS_SYNC_H_
#define LCREC_OBS_SYNC_H_

#include <condition_variable>
#include <mutex>

namespace lcrec::obs {

class FixtureMutex {
 public:
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
  std::condition_variable_any cv_;
};

}  // namespace lcrec::obs

#endif  // LCREC_OBS_SYNC_H_

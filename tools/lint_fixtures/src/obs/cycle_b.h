// include-cycle: the other half of the cycle_a.h <-> cycle_b.h pair.
#ifndef LCREC_OBS_CYCLE_B_H_
#define LCREC_OBS_CYCLE_B_H_

#include "obs/cycle_a.h"  // expect-lint: include-cycle

#endif  // LCREC_OBS_CYCLE_B_H_

// include-cycle: this header and cycle_b.h include each other; both
// directives sit on the cycle and each gets its own finding.
#ifndef LCREC_OBS_CYCLE_A_H_
#define LCREC_OBS_CYCLE_A_H_

#include "obs/cycle_b.h"  // expect-lint: include-cycle

#endif  // LCREC_OBS_CYCLE_A_H_

// Fixture: src/obs/ is the logging backend, so fprintf(stderr, ...) is
// allowed here. Never compiled, only scanned.
#include <cstdio>

namespace lcrec::fixture {

void Emit(const char* msg) { std::fprintf(stderr, "%s\n", msg); }

}  // namespace lcrec::fixture

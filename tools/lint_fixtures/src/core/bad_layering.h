// module-layering: src/core sits at layer 0 and must not reach up into
// the serving stack. The obs include below is clean — the layer map's
// "allow core obs" whitelists that one upward edge.
#ifndef LCREC_CORE_BAD_LAYERING_H_
#define LCREC_CORE_BAD_LAYERING_H_

#include "obs/cycle_a.h"
#include "serve/loopback.h"  // expect-lint: module-layering

#endif  // LCREC_CORE_BAD_LAYERING_H_

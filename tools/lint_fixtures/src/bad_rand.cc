// Fixture: std::rand/srand break seeded reproducibility and must be
// flagged everywhere. Never compiled, only scanned.
#include <cstdlib>

namespace lcrec::fixture {

int Noise() {
  srand(42);  // expect-lint: std-rand
  return std::rand();  // expect-lint: std-rand
}

}  // namespace lcrec::fixture

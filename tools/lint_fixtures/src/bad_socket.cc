// Fixture: raw socket-API calls outside src/obs/http must be flagged —
// all networking funnels through the one audited event loop
// (obs::HttpServer / obs::HttpGet). Never compiled, only scanned.

void OpenRawSocket() {
  int fd = socket(2, 1, 0);  // expect-lint: raw-socket
  bind(fd, nullptr, 0);      // expect-lint: raw-socket
  listen(fd, 16);            // expect-lint: raw-socket
  accept(fd, nullptr, nullptr);  // expect-lint: raw-socket
}

void OpenGlobalQualified() {
  int fd = ::socket(2, 1, 0);  // expect-lint: raw-socket
  ::connect(fd, nullptr, 0);   // expect-lint: raw-socket
}

void Blessed() {
  int fd = socket(2, 1, 0);  // lint:allow(raw-socket)
  (void)fd;
}

// None of these are the socket API; the *uses* below must NOT be
// flagged. (A member-function *declaration* is indistinguishable from a
// call to the scanner, so declaring members with these names takes an
// explicit lint:allow.)
struct Conn {
  void bind(int);     // lint:allow(raw-socket)
  void connect(int);  // lint:allow(raw-socket)
};
void NotTheSocketApi(Conn& c, Conn* p) {
  c.bind(1);                       // member call
  p->connect(2);                   // member call through a pointer
  auto f = std::bind(&Conn::bind, &c, 3);  // other-namespace qualification
  (void)f;
  int bindings = 0;                // identifier merely containing the name
  (void)bindings;
}

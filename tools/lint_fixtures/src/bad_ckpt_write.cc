// Fixture: binary std::ofstream writes outside src/ckpt/ bypass the
// atomic, checksummed checkpoint path and must be flagged. A suppressed
// line (lint:allow) must stay quiet. Never compiled, only scanned.
#include <fstream>

namespace lcrec::fixture {

void DumpState(const char* path) {
  std::ofstream os(path, std::ios::binary);  // expect-lint: ckpt-bypass
  os << 1;
}

void AllowedDump(const char* path) {
  std::ofstream os(path, std::ios::binary);  // lint:allow(ckpt-bypass)
  os << 2;
}

}  // namespace lcrec::fixture

// raw-sync: standard-library synchronization primitives outside
// src/obs/sync.h. Every lock in the tree must be an obs::Mutex so it
// is named, ranked, deadlock-checked, and accounted.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace lcrec {

std::mutex g_mu;                    // expect-lint: raw-sync
std::recursive_mutex g_rec;         // expect-lint: raw-sync
std::timed_mutex g_timed;           // expect-lint: raw-sync
std::shared_mutex g_rw;             // expect-lint: raw-sync
std::condition_variable g_cv;       // expect-lint: raw-sync
std::condition_variable_any g_cva;  // expect-lint: raw-sync

int LockGuard() {
  std::lock_guard<std::mutex> g(g_mu);  // expect-lint: raw-sync
  return 1;
}

int UniqueLock() {
  std::unique_lock<std::mutex> g(g_mu);  // expect-lint: raw-sync
  return 2;
}

int SharedLock() {
  std::shared_lock<std::shared_mutex> g(g_rw);  // expect-lint: raw-sync
  return 3;
}

int ScopedLock() {
  std::scoped_lock g(g_mu);  // expect-lint: raw-sync
  return 4;
}

// A comment mentioning std::mutex never fires, and neither does the
// string below.
const char* kDoc = "prefer obs::Mutex over std::mutex";

}  // namespace lcrec
